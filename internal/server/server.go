package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"racelogic"
	"racelogic/internal/obs"
	"racelogic/internal/seqgen"
)

// Config parameterizes a search service.
type Config struct {
	// DB is the loaded database every request races against.  Required.
	DB *racelogic.Database
	// CacheSize bounds the LRU report cache; ≤ 0 disables caching.
	CacheSize int
	// DefaultTopK truncates reports when a request does not set top_k;
	// ≤ 0 returns every match.
	DefaultTopK int
	// MaxQueryLen rejects queries longer than this before any engine is
	// compiled — a race array is O(query·entry) gates, so an unbounded
	// query is a denial-of-service lever on a public endpoint.  ≤ 0
	// selects DefaultMaxQueryLen.
	MaxQueryLen int
	// SlowQueryLatency logs any uncached search slower than this to the
	// bounded slow-query log and the process log; ≤ 0 disables the
	// latency trigger.
	SlowQueryLatency time.Duration
	// SlowQueryEnergyJ logs any uncached search spending at least this
	// many joules — the hardware-native analogue of a latency threshold;
	// ≤ 0 disables the energy trigger.
	SlowQueryEnergyJ float64
	// SlowLogSize bounds the slow-query ring served by GET /slowlog;
	// ≤ 0 selects DefaultSlowLogSize.
	SlowLogSize int
}

// DefaultSlowLogSize bounds the slow-query ring when Config.SlowLogSize
// is unset.
const DefaultSlowLogSize = 128

// DefaultMaxQueryLen bounds /search queries when Config.MaxQueryLen is
// unset.
const DefaultMaxQueryLen = 4096

// maxBodyBytes bounds a /search request body; the query length cap makes
// anything beyond a few times DefaultMaxQueryLen meaningless.
const maxBodyBytes = 1 << 20

// Server is the HTTP search service.  It is an http.Handler and is safe
// for concurrent requests.
type Server struct {
	db          *racelogic.Database
	cache       *lru
	defaultTopK int
	maxQueryLen int
	start       time.Time
	mux         *http.ServeMux

	// reg is the server-side metric registry (request counters, cache
	// gauges, uptime); GET /metrics merges it with the database's own.
	reg         *obs.Registry
	slow        *obs.SlowLog
	slowLatency time.Duration
	slowEnergy  float64

	requests     atomic.Int64 // /search requests received
	cacheHits    atomic.Int64
	failures     atomic.Int64 // requests answered with an error
	mutations    atomic.Int64 // successful inserts + removes
	slowQueries  atomic.Int64
	batches      atomic.Int64 // array-form /search requests
	batchQueries atomic.Int64 // queries carried by those batches
}

// New builds the service around a loaded database.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	maxQueryLen := cfg.MaxQueryLen
	if maxQueryLen <= 0 {
		maxQueryLen = DefaultMaxQueryLen
	}
	slowLogSize := cfg.SlowLogSize
	if slowLogSize <= 0 {
		slowLogSize = DefaultSlowLogSize
	}
	s := &Server{
		db:          cfg.DB,
		cache:       newLRU(cfg.CacheSize),
		defaultTopK: cfg.DefaultTopK,
		maxQueryLen: maxQueryLen,
		start:       time.Now(),
		mux:         http.NewServeMux(),
		slow:        obs.NewSlowLog(slowLogSize),
		slowLatency: cfg.SlowQueryLatency,
		slowEnergy:  cfg.SlowQueryEnergyJ,
	}
	s.initObs()
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/slowlog", s.handleSlowLog)
	s.mux.Handle("/metrics", obs.Handler(s.db.Metrics(), s.reg))
	s.mux.HandleFunc("POST /entries", s.handleInsert)
	s.mux.HandleFunc("POST /entries/bulk", s.handleBulkInsert)
	s.mux.HandleFunc("DELETE /entries/{id}", s.handleRemove)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	return s, nil
}

// ServeHTTP dispatches to the service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SearchRequest is the POST /search body.  The endpoint also accepts a
// JSON array of these: the array form answers with an array of
// SearchResponse in the same order, and queries that share options race
// as one batch, packing same-shape candidate pairs from different
// queries into the same wide lanes under the lanes backend.
type SearchRequest struct {
	// Query is the sequence to rank the database against.  Required.
	Query string `json:"query"`
	// TopK truncates the ranked results; omitted or 0 selects the
	// server default, negative keeps every match.
	TopK int `json:"top_k,omitempty"`
	// Threshold enables the Section 6 pre-filter; omitted or negative
	// disables it.
	Threshold *int64 `json:"threshold,omitempty"`
	// FullScan bypasses the database's k-mer seed index for this query.
	FullScan bool `json:"full_scan,omitempty"`
}

// SearchResult is one ranked match of a SearchResponse.  ID is the
// entry's stable identifier — the handle DELETE /entries/{id} takes —
// while Index is its current slot, which compaction may renumber.
type SearchResult struct {
	Index    int           `json:"index"`
	ID       uint64        `json:"id"`
	Sequence string        `json:"sequence"`
	Score    int64         `json:"score"`
	Metrics  SearchMetrics `json:"metrics"`
}

// SearchMetrics prices one race under the database's standard-cell
// library — the paper's Section 4.1 accounting, per request.
type SearchMetrics struct {
	Cycles           int     `json:"cycles"`
	LatencyNS        float64 `json:"latency_ns"`
	EnergyJ          float64 `json:"energy_j"`
	AreaUM2          float64 `json:"area_um2"`
	PowerDensityWCM2 float64 `json:"power_density_w_cm2"`
}

// SearchResponse is the POST /search reply.  Version is the database
// mutation counter the search ran against: the report is one consistent
// snapshot even when inserts and removes land mid-search.
type SearchResponse struct {
	Query        string         `json:"query"`
	Version      int64          `json:"version"`
	Results      []SearchResult `json:"results"`
	Scanned      int            `json:"scanned"`
	Skipped      int            `json:"skipped"`
	Matched      int            `json:"matched"`
	Rejected     int            `json:"rejected"`
	Buckets      int            `json:"buckets"`
	EnginesBuilt int            `json:"engines_built"`
	TotalCycles  int            `json:"total_cycles"`
	TotalEnergyJ float64        `json:"total_energy_j"`
	// Cached reports that the response was served from the LRU cache;
	// ElapsedUS is this request's wall-clock service time either way.
	Cached    bool  `json:"cached"`
	ElapsedUS int64 `json:"elapsed_us"`
	// Trace is the per-shard span breakdown, present only on ?trace=1
	// requests (which always race — never served or stored by the cache).
	Trace *obs.TraceReport `json:"trace,omitempty"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// mutationStatus classifies a mutation error: journal I/O failures and
// a closed (shutting-down) database are the server's fault, not the
// client's, and must not be counted or retried as bad requests.
func mutationStatus(err error) int {
	switch {
	case errors.Is(err, racelogic.ErrJournal):
		return http.StatusInternalServerError
	case errors.Is(err, racelogic.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.requests.Add(1)
	// The body is buffered (it is already capped at maxBodyBytes) so the
	// first non-whitespace byte can dispatch between the single-object
	// and array forms before either decoder runs.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if jsonArrayBody(body) {
		s.handleSearchBatch(w, r, started, body)
		return
	}
	var req SearchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Query == "" {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "query is required"})
		return
	}
	if len(req.Query) > s.maxQueryLen {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("query length %d exceeds the %d-symbol limit", len(req.Query), s.maxQueryLen)})
		return
	}
	// Normalize case like the database loaders do, so a lowercase query
	// matches the (uppercased) entries it came from.
	req.Query = strings.ToUpper(req.Query)
	topK := req.TopK
	if topK == 0 {
		topK = s.defaultTopK
	}

	// A traced request exists to measure the real pipeline, so it
	// bypasses the cache in both directions: a hit would trace nothing,
	// and storing the traced response would replay a stale breakdown.
	traced := r.URL.Query().Get("trace") == "1"

	// The key carries the database version read *before* the search, so
	// every mutation implicitly invalidates the whole cache: a stale
	// report can only be found under a version no future request asks
	// for.  (A search racing a mutation may be cached under the older
	// version's key — harmless for the same reason.)
	key := cacheKey(s.db.Version(), req.Query, topK, req.Threshold, req.FullScan)
	if !traced {
		if cached, ok := s.cache.get(key); ok {
			// get hands back a private copy, so stamping these per-request
			// fields cannot corrupt the cached response other callers share.
			s.cacheHits.Add(1)
			cached.Cached = true
			cached.ElapsedUS = time.Since(started).Microseconds()
			writeJSON(w, http.StatusOK, cached)
			return
		}
	}

	var opts []racelogic.Option
	if topK != 0 {
		// Negative means "every match": WithTopK clamps it to the
		// no-truncation sentinel, overriding any database default.
		opts = append(opts, racelogic.WithTopK(topK))
	}
	if req.Threshold != nil {
		opts = append(opts, racelogic.WithThreshold(*req.Threshold))
	}
	if req.FullScan {
		opts = append(opts, racelogic.WithFullScan())
	}
	ctx := r.Context()
	var tr *obs.Trace
	if traced {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	rep, err := s.db.SearchContext(ctx, req.Query, opts...)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp := toResponse(rep)
	if traced {
		resp.Trace = tr.Report()
	} else {
		s.cache.add(key, resp)
	}
	out := *resp
	elapsed := time.Since(started)
	out.ElapsedUS = elapsed.Microseconds()
	s.noteSlow(req.Query, elapsed, rep, out.Trace)
	writeJSON(w, http.StatusOK, &out)
}

// jsonArrayBody reports whether the body's first non-whitespace byte
// opens a JSON array — the batch form of POST /search.
func jsonArrayBody(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		default:
			return b == '['
		}
	}
	return false
}

// batchKey groups batch items that resolved to the same search options:
// each group becomes one Database.SearchBatch call, since lane packs
// only coalesce queries racing under the same threshold and ranking.
func batchKey(topK int, threshold *int64, fullScan bool) string {
	t := "off"
	if threshold != nil {
		t = fmt.Sprint(*threshold)
	}
	return fmt.Sprintf("%d\x00%s\x00%v", topK, t, fullScan)
}

// handleSearchBatch answers the array form of POST /search: one
// SearchResponse per request item, in order.  Cache hits are peeled off
// per item; the misses regroup by options and race as shared batches.
// Any invalid item fails the whole request with its index named —
// nothing is raced or cached on a 4xx.  ?trace=1 is ignored here: a
// trace describes exactly one query's pipeline.  ElapsedUS on every
// item is the whole request's service time.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request, started time.Time, body []byte) {
	var reqs []SearchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reqs); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(reqs) == 0 {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch contains no queries"})
		return
	}
	topKs := make([]int, len(reqs))
	for i := range reqs {
		if reqs[i].Query == "" {
			s.failures.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: query is required", i)})
			return
		}
		if len(reqs[i].Query) > s.maxQueryLen {
			s.failures.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("query %d: length %d exceeds the %d-symbol limit", i, len(reqs[i].Query), s.maxQueryLen)})
			return
		}
		reqs[i].Query = strings.ToUpper(reqs[i].Query)
		topKs[i] = reqs[i].TopK
		if topKs[i] == 0 {
			topKs[i] = s.defaultTopK
		}
	}
	s.batches.Add(1)
	s.batchQueries.Add(int64(len(reqs)))

	version := s.db.Version()
	out := make([]*SearchResponse, len(reqs))
	groups := make(map[string][]int)
	var order []string
	for i := range reqs {
		key := cacheKey(version, reqs[i].Query, topKs[i], reqs[i].Threshold, reqs[i].FullScan)
		if cached, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			cached.Cached = true
			out[i] = cached
			continue
		}
		gk := batchKey(topKs[i], reqs[i].Threshold, reqs[i].FullScan)
		if _, seen := groups[gk]; !seen {
			order = append(order, gk)
		}
		groups[gk] = append(groups[gk], i)
	}
	for _, gk := range order {
		idxs := groups[gk]
		first := reqs[idxs[0]]
		var opts []racelogic.Option
		if topKs[idxs[0]] != 0 {
			opts = append(opts, racelogic.WithTopK(topKs[idxs[0]]))
		}
		if first.Threshold != nil {
			opts = append(opts, racelogic.WithThreshold(*first.Threshold))
		}
		if first.FullScan {
			opts = append(opts, racelogic.WithFullScan())
		}
		queries := make([]string, len(idxs))
		for j, i := range idxs {
			queries[j] = reqs[i].Query
		}
		reps, err := s.db.SearchBatchContext(r.Context(), queries, opts...)
		if err != nil {
			s.failures.Add(1)
			var be *racelogic.BatchError
			if errors.As(err, &be) {
				// Name the failing item by its position in the request
				// array, not its slot within this option group.
				err = fmt.Errorf("query %d: %w", idxs[be.Query], be.Err)
			}
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		for j, i := range idxs {
			resp := toResponse(reps[j])
			s.cache.add(cacheKey(version, reqs[i].Query, topKs[i], reqs[i].Threshold, reqs[i].FullScan), resp)
			out[i] = resp
		}
	}
	elapsed := time.Since(started).Microseconds()
	final := make([]SearchResponse, len(out))
	for i, resp := range out {
		final[i] = *resp
		final[i].ElapsedUS = elapsed
	}
	writeJSON(w, http.StatusOK, final)
}

// cacheKey encodes a request's full identity, prefixed by the database
// version it would search.  The numeric fields form fixed-format
// segments that never contain '\x00', so distinct requests never
// collide even if a query embeds the separator.
func cacheKey(version int64, query string, topK int, threshold *int64, fullScan bool) string {
	t := "off"
	if threshold != nil {
		t = fmt.Sprint(*threshold)
	}
	return fmt.Sprintf("%d\x00%s\x00%d\x00%s\x00%v", version, query, topK, t, fullScan)
}

func toResponse(rep *racelogic.SearchReport) *SearchResponse {
	resp := &SearchResponse{
		Query:        rep.Query,
		Version:      rep.Version,
		Results:      make([]SearchResult, len(rep.Results)),
		Scanned:      rep.Scanned,
		Skipped:      rep.Skipped,
		Matched:      rep.Matched,
		Rejected:     rep.Rejected,
		Buckets:      rep.Buckets,
		EnginesBuilt: rep.EnginesBuilt,
		TotalCycles:  rep.TotalCycles,
		TotalEnergyJ: rep.TotalEnergyJ,
	}
	for i, r := range rep.Results {
		resp.Results[i] = SearchResult{
			Index:    r.Index,
			ID:       r.ID,
			Sequence: r.Sequence,
			Score:    r.Score,
			Metrics: SearchMetrics{
				Cycles:           r.Metrics.Cycles,
				LatencyNS:        r.Metrics.LatencyNS,
				EnergyJ:          r.Metrics.EnergyJ,
				AreaUM2:          r.Metrics.AreaUM2,
				PowerDensityWCM2: r.Metrics.PowerDensityWCM2,
			},
		}
	}
	return resp
}

// InsertRequest is the POST /entries body.
type InsertRequest struct {
	// Entries are the sequences to add.  They are case-normalized like
	// the database loaders' sequences and validated against the engine
	// alphabet; on any invalid entry nothing is inserted.
	Entries []string `json:"entries"`
}

// MutationResponse is the reply to POST /entries and DELETE
// /entries/{id}: the IDs touched, plus the database's new shape.
type MutationResponse struct {
	// IDs are the stable identifiers assigned (insert) or deleted
	// (remove), in request order.
	IDs []uint64 `json:"ids"`
	// Entries is the live entry count and Version the mutation counter
	// after this mutation.
	Entries int   `json:"entries"`
	Version int64 `json:"version"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req InsertRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Entries) == 0 {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "entries is required"})
		return
	}
	for i, entry := range req.Entries {
		// The same DoS guard as queries: arrays are O(query·entry) gates,
		// so an unbounded entry is as dangerous as an unbounded query.
		if len(entry) > s.maxQueryLen {
			s.failures.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("entry %d length %d exceeds the %d-symbol limit", i, len(entry), s.maxQueryLen)})
			return
		}
		req.Entries[i] = strings.ToUpper(entry)
	}
	ids, err := s.db.Insert(req.Entries...)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, mutationStatus(err), errorResponse{Error: err.Error()})
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, MutationResponse{IDs: ids, Entries: s.db.Len(), Version: s.db.Version()})
}

// maxBulkBytes bounds one /entries/bulk upload.  The body streams
// through a scanner rather than being buffered, so this guards disk and
// index growth per request, not memory.
const maxBulkBytes = 256 << 20

// bulkBatch is how many streamed entries land per Database.Insert call:
// each batch is one journaled multi-insert record in the write-ahead
// log and one copy-on-write snapshot publish, so a million-entry upload
// costs thousands, not millions, of journal syncs and index copies.
const bulkBatch = 512

// BulkInsertResponse is the POST /entries/bulk reply.  Batches are
// atomic but the upload as a whole is not: on a mid-stream error the
// response reports how much landed (every landed batch is journaled
// and therefore durable) alongside the error.
type BulkInsertResponse struct {
	// Inserted counts the entries that landed; Batches the journaled
	// multi-insert records they landed in.
	Inserted int `json:"inserted"`
	Batches  int `json:"batches"`
	// FirstID and LastID bracket the assigned stable IDs when the
	// upload was the only writer; concurrent inserts may interleave.
	FirstID *uint64 `json:"first_id,omitempty"`
	LastID  *uint64 `json:"last_id,omitempty"`
	// Entries is the live entry count and Version the mutation counter
	// after the upload.
	Entries int    `json:"entries"`
	Version int64  `json:"version"`
	Error   string `json:"error,omitempty"`
}

// handleBulkInsert streams a corpus upload — NDJSON (one JSON string
// per line, Content-Type application/x-ndjson) or FASTA / plain text,
// auto-detected — into the database in journaled batches, without ever
// buffering the whole body.
func (s *Server) handleBulkInsert(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	body := http.MaxBytesReader(w, r.Body, maxBulkBytes)
	next := s.bulkSource(r, body)

	resp := &BulkInsertResponse{}
	fail := func(status int, msg string) {
		s.failures.Add(1)
		resp.Error = msg
		resp.Entries = s.db.Len()
		resp.Version = s.db.Version()
		writeJSON(w, status, resp)
	}
	batch := make([]string, 0, bulkBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		ids, err := s.db.Insert(batch...)
		if err != nil {
			return err
		}
		if resp.FirstID == nil {
			resp.FirstID = &ids[0]
		}
		resp.LastID = &ids[len(ids)-1]
		resp.Inserted += len(ids)
		resp.Batches++
		s.mutations.Add(1)
		batch = batch[:0]
		return nil
	}
	for {
		entry, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(http.StatusBadRequest, "reading entry "+strconv.Itoa(resp.Inserted+len(batch))+": "+err.Error())
			return
		}
		if len(entry) > s.maxQueryLen {
			fail(http.StatusBadRequest, fmt.Sprintf("entry %d length %d exceeds the %d-symbol limit",
				resp.Inserted+len(batch), len(entry), s.maxQueryLen))
			return
		}
		batch = append(batch, strings.ToUpper(entry))
		if len(batch) == bulkBatch {
			if err := flush(); err != nil {
				fail(mutationStatus(err), err.Error())
				return
			}
		}
	}
	if err := flush(); err != nil {
		fail(mutationStatus(err), err.Error())
		return
	}
	if resp.Inserted == 0 {
		fail(http.StatusBadRequest, "upload contained no entries")
		return
	}
	resp.Entries = s.db.Len()
	resp.Version = s.db.Version()
	writeJSON(w, http.StatusOK, resp)
}

// bulkSource picks the per-entry decoder for an upload: NDJSON when the
// Content-Type says so, the FASTA/plain auto-detecting sequence scanner
// otherwise.
func (s *Server) bulkSource(r *http.Request, body io.Reader) func() (string, error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, _ := strings.Cut(ct, ";"); strings.TrimSpace(mt) == "application/x-ndjson" {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		return func() (string, error) {
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" {
					continue
				}
				var entry string
				if err := json.Unmarshal([]byte(line), &entry); err != nil {
					return "", fmt.Errorf("NDJSON line is not a JSON string: %w", err)
				}
				return entry, nil
			}
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.EOF
		}
	}
	sc := seqgen.NewScanner(body)
	return sc.Next
}

// CompactResponse is the POST /compact reply.  Entry IDs are the stable
// handle across compactions — clients should key on SearchResult.ID,
// never Index; Remap exists only so a client that cached slot indices
// can rebind them once.
type CompactResponse struct {
	// Version is the mutation counter after the compaction (unchanged
	// when nothing was reclaimed); Entries the live count.
	Version int64 `json:"version"`
	Entries int   `json:"entries"`
	// Reclaimed is the number of tombstoned slots dropped.
	Reclaimed int `json:"reclaimed"`
	// Remap maps every pre-compaction slot to its new slot, -1 for the
	// dropped tombstones.  Omitted when nothing was reclaimed.
	Remap []int `json:"remap,omitempty"`
}

// handleCompact is the manual admin trigger: compact now, regardless of
// the automatic policy, and report the slot remap.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st, err := s.db.Compact()
	if err != nil {
		s.failures.Add(1)
		// Compact takes no client input: anything not classified is
		// still the server's problem, never a 400.
		status := mutationStatus(err)
		if status == http.StatusBadRequest {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	if st.Reclaimed > 0 {
		s.mutations.Add(1)
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Version:   st.Version,
		Entries:   st.Live,
		Reclaimed: st.Reclaimed,
		Remap:     st.Remap,
	})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.failures.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad entry id: " + r.PathValue("id")})
		return
	}
	if err := s.db.Remove(id); err != nil {
		s.failures.Add(1)
		status := mutationStatus(err)
		if errors.Is(err, racelogic.ErrUnknownID) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, MutationResponse{IDs: []uint64{id}, Entries: s.db.Len(), Version: s.db.Version()})
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status  string `json:"status"`
	Entries int    `json:"entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Entries: s.db.Len()})
}

// StatsResponse is the GET /stats reply: database shape, durability
// state, per-shard gauges, and cumulative service counters.  The shape
// fields — Entries, Version, Tombstones, Buckets, and the Shards rows —
// are one consistent cut: they all come from the same atomically loaded
// database view, so Entries always sums the shard rows and Version is
// the view those counts belong to, even under concurrent mutation.
type StatsResponse struct {
	Entries    int   `json:"entries"`
	Version    int64 `json:"version"`
	Tombstones int   `json:"tombstones"`
	Buckets    int   `json:"buckets"`
	SeedK      int   `json:"seed_k"`
	ShardCount int   `json:"shard_count"`
	// GoVersion is the toolchain the serving binary was built with.
	GoVersion string `json:"go_version"`
	// Backend names the simulation engine the database races on:
	// "cycle" (the reference simulator) or "event" (the event-driven
	// fast path).
	Backend       string `json:"backend"`
	Searches      int64  `json:"searches"`
	Mutations     int64  `json:"mutations"`
	Compactions   int64  `json:"compactions"`
	EnginesBuilt  int64  `json:"engines_built"`
	PooledEngines int    `json:"pooled_engines"`
	Requests      int64  `json:"requests"`
	// Batches counts the array-form /search requests served;
	// BatchQueries the queries they carried between them.
	Batches       int64 `json:"batches"`
	BatchQueries  int64 `json:"batch_queries"`
	Failures      int64 `json:"failures"`
	CacheHits     int64 `json:"cache_hits"`
	CacheEntries  int   `json:"cache_entries"`
	CacheCapacity int   `json:"cache_capacity"`
	SlowQueries   int64 `json:"slow_queries"`
	UptimeSeconds int64 `json:"uptime_seconds"`
	// Durable reports whether mutations are journaled to a write-ahead
	// log; the WAL and snapshot fields below are zero when it is false.
	Durable bool `json:"durable"`
	// WALRecords and WALBytes measure the journal tail not yet folded
	// into a snapshot — what a restart would replay.
	WALRecords int64 `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// Snapshots counts durable snapshot saves; SnapshotFailures the
	// background attempts that errored; SnapshotAgeSeconds the age of
	// the newest on-disk snapshot (-1 when not durable).
	Snapshots          int64   `json:"snapshots"`
	SnapshotFailures   int64   `json:"snapshot_failures"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// WALSegments counts the sealed journal segments awaiting the next
	// checkpoint, across every shard.
	WALSegments int `json:"wal_segments"`
	// Shards holds one gauge set per partition: entries, tombstones,
	// journal tail, and snapshot age, so an operator can see skew and
	// per-shard replay debt at a glance.
	Shards []racelogic.ShardStat `json:"shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	age := -1.0
	if s.db.Durable() {
		age = s.db.SnapshotAge().Seconds()
	}
	// One Stats() call pins one view: reading Len, Version, Tombstones,
	// and the shard rows through separate calls lets a concurrent
	// mutation land between them, tearing the reply (an entry count from
	// one version reported against another's shard rows).
	dbs := s.db.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Entries:            dbs.Entries,
		Version:            dbs.Version,
		Tombstones:         dbs.Tombstones,
		Buckets:            dbs.Buckets,
		SeedK:              s.db.SeedK(),
		ShardCount:         s.db.Shards(),
		GoVersion:          runtime.Version(),
		Backend:            s.db.Backend().String(),
		Searches:           s.db.Searches(),
		Mutations:          s.mutations.Load(),
		Compactions:        s.db.Compactions(),
		EnginesBuilt:       s.db.EnginesBuilt(),
		PooledEngines:      s.db.PooledEngines(),
		Requests:           s.requests.Load(),
		Batches:            s.batches.Load(),
		BatchQueries:       s.batchQueries.Load(),
		Failures:           s.failures.Load(),
		CacheHits:          s.cacheHits.Load(),
		CacheEntries:       s.cache.len(),
		CacheCapacity:      s.cache.capacity(),
		SlowQueries:        s.slowQueries.Load(),
		UptimeSeconds:      int64(time.Since(s.start).Seconds()),
		Durable:            s.db.Durable(),
		WALRecords:         s.db.WALRecords(),
		WALBytes:           s.db.WALBytes(),
		Snapshots:          s.db.Snapshots(),
		SnapshotFailures:   s.db.SnapshotFailures(),
		SnapshotAgeSeconds: age,
		WALSegments:        s.db.WALSegments(),
		Shards:             dbs.Shards,
	})
}
