package server

import (
	"encoding/json"
	"log"
	"net/http"
	"time"

	"racelogic"
	"racelogic/internal/obs"
)

// initObs builds the server-side registry: the HTTP-layer counters and
// cache gauges that complement the database's own registry under the
// shared GET /metrics endpoint.
func (s *Server) initObs() {
	r := obs.NewRegistry()
	r.CounterFunc("racelogic_http_requests_total",
		"Service requests received (search, mutation, compact).",
		func() float64 { return float64(s.requests.Load()) })
	r.CounterFunc("racelogic_http_failures_total",
		"Requests answered with an error status.",
		func() float64 { return float64(s.failures.Load()) })
	r.CounterFunc("racelogic_http_mutations_total",
		"Successful inserts, bulk batches, and removes.",
		func() float64 { return float64(s.mutations.Load()) })
	r.CounterFunc("racelogic_http_search_batches_total",
		"Array-form /search requests served.",
		func() float64 { return float64(s.batches.Load()) })
	r.CounterFunc("racelogic_http_search_batch_queries_total",
		"Queries carried by array-form /search requests.",
		func() float64 { return float64(s.batchQueries.Load()) })
	r.CounterFunc("racelogic_cache_hits_total",
		"Searches served from the response cache.",
		func() float64 { return float64(s.cacheHits.Load()) })
	r.CounterFunc("racelogic_slow_queries_total",
		"Searches that crossed a slow-query threshold.",
		func() float64 { return float64(s.slowQueries.Load()) })
	r.GaugeFunc("racelogic_cache_entries",
		"Responses currently held by the cache.",
		func() float64 { return float64(s.cache.len()) })
	r.GaugeFunc("racelogic_cache_capacity",
		"Response-cache bound; 0 when caching is disabled.",
		func() float64 { return float64(s.cache.capacity()) })
	r.GaugeFunc("racelogic_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg = r
}

// MetricsHandler returns the GET /metrics handler — the database's
// registry merged with the server's — for mounting on a separate debug
// listener in addition to the service mux.
func (s *Server) MetricsHandler() http.Handler {
	return obs.Handler(s.db.Metrics(), s.reg)
}

// noteSlow records one uncached search against the slow-query
// thresholds: a crossing lands in the bounded ring (with the trace
// breakdown when the request carried one) and on the process log as a
// single JSON line.
func (s *Server) noteSlow(query string, elapsed time.Duration, rep *racelogic.SearchReport, tr *obs.TraceReport) {
	overLatency := s.slowLatency > 0 && elapsed >= s.slowLatency
	overEnergy := s.slowEnergy > 0 && rep.TotalEnergyJ >= s.slowEnergy
	if !overLatency && !overEnergy {
		return
	}
	s.slowQueries.Add(1)
	sq := obs.SlowQuery{
		Time:         time.Now().UTC(),
		Query:        query,
		ElapsedUS:    elapsed.Microseconds(),
		Version:      rep.Version,
		Scanned:      rep.Scanned,
		Skipped:      rep.Skipped,
		Matched:      rep.Matched,
		TotalCycles:  rep.TotalCycles,
		TotalEnergyJ: rep.TotalEnergyJ,
		Trace:        tr,
	}
	s.slow.Add(sq)
	if line, err := json.Marshal(sq); err == nil {
		log.Printf("slow query: %s", line)
	}
}

// SlowLogResponse is the GET /slowlog reply: the retained slow-query
// records, oldest first.
type SlowLogResponse struct {
	// Count is the number of retained records; Total every slow query
	// since start (the ring may have evicted the difference).
	Count   int             `json:"count"`
	Total   int64           `json:"total"`
	Queries []obs.SlowQuery `json:"queries"`
}

func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	qs := s.slow.Entries()
	writeJSON(w, http.StatusOK, SlowLogResponse{
		Count:   len(qs),
		Total:   s.slowQueries.Load(),
		Queries: qs,
	})
}
