package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"racelogic"
	"racelogic/internal/seqgen"
)

// testFASTA is a small mixed-length database with one exact hit and one
// near hit for the test query ACGTACGT.
const testFASTA = `>hit exact match
ACGTACGT
>near one substitution
ACGTACCT
>far all-T
TTTTTTTT
>short its own bucket
ACGTAC
>multi line record
ACGT
TCGA
`

// newTestServer loads testFASTA through the real file-reading path and
// serves it, mirroring what cmd/raceserve does.
func newTestServer(t *testing.T, opts ...racelogic.Option) (*httptest.Server, *racelogic.Database, []string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.fasta")
	if err := os.WriteFile(path, []byte(testFASTA), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := seqgen.ReadSequencesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("loaded %d entries from FASTA, want 5", len(entries))
	}
	db, err := racelogic.NewDatabase(entries, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DB: db, CacheSize: 8, DefaultTopK: 10, MaxQueryLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, db, entries
}

func postSearch(t *testing.T, url string, body string) (*http.Response, *SearchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/search", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return resp, &sr
}

// TestSearchEndToEnd is the FASTA-to-ranked-report integration test: the
// HTTP reply must carry exactly the report the library computes.
func TestSearchEndToEnd(t *testing.T) {
	ts, _, entries := newTestServer(t)
	query := "ACGTACGT"

	resp, got := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, query))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	want, err := racelogic.Search(query, entries, racelogic.WithTopK(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scanned != want.Scanned || got.Matched != want.Matched ||
		got.Buckets != want.Buckets || got.TotalCycles != want.TotalCycles {
		t.Errorf("aggregates differ: got %+v, want %+v", got, want)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i, r := range got.Results {
		w := want.Results[i]
		if r.Index != w.Index || r.Score != w.Score || r.Sequence != w.Sequence {
			t.Errorf("rank %d: got (%d, %d, %s), want (%d, %d, %s)",
				i, r.Index, r.Score, r.Sequence, w.Index, w.Score, w.Sequence)
		}
		if r.Metrics.Cycles != w.Metrics.Cycles || r.Metrics.EnergyJ != w.Metrics.EnergyJ {
			t.Errorf("rank %d: metrics differ: got %+v, want %+v", i, r.Metrics, w.Metrics)
		}
	}
	if got.Results[0].Sequence != query || got.Results[0].Score != int64(len(query)) {
		t.Errorf("top hit should be the exact match scoring %d, got %+v", len(query), got.Results[0])
	}
	if got.Cached {
		t.Error("first request must not be served from cache")
	}

	// Negative top_k overrides any truncation default: every match comes
	// back.
	_, all := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q,"top_k":-1}`, query))
	if len(all.Results) != all.Matched {
		t.Errorf("top_k=-1 returned %d of %d matches", len(all.Results), all.Matched)
	}

	// Queries are case-normalized like the database loaders' sequences.
	_, lower := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, strings.ToLower(query)))
	if lower == nil || len(lower.Results) != len(got.Results) || lower.Results[0].Score != got.Results[0].Score {
		t.Errorf("lowercase query must behave like its uppercase twin, got %+v", lower)
	}
}

// TestSearchCache pins the LRU behavior: an identical repeat request is a
// hit with byte-identical report content, a different request is not.
func TestSearchCache(t *testing.T) {
	ts, _, _ := newTestServer(t)
	body := `{"query":"ACGTACGT","top_k":3,"threshold":12}`

	_, first := postSearch(t, ts.URL, body)
	_, second := postSearch(t, ts.URL, body)
	if !second.Cached {
		t.Error("identical repeat request must be served from cache")
	}
	first.Cached, second.Cached = false, false
	first.ElapsedUS, second.ElapsedUS = 0, 0
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Errorf("cached reply differs from original:\n%s\n%s", a, b)
	}

	_, third := postSearch(t, ts.URL, `{"query":"ACGTACGT","top_k":4,"threshold":12}`)
	if third.Cached {
		t.Error("request with different options must miss the cache")
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", stats.CacheHits)
	}
	if stats.Requests != 3 {
		t.Errorf("requests = %d, want 3", stats.Requests)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts, db, _ := newTestServer(t, racelogic.WithSeedIndex(4))

	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Entries != db.Len() {
		t.Errorf("healthz = %+v, want ok with %d entries", health, db.Len())
	}

	// The seeded query must skip the all-T entry.
	_, sr := postSearch(t, ts.URL, `{"query":"ACGTACGT"}`)
	if sr.Skipped == 0 {
		t.Errorf("seed index should skip dissimilar entries, report: %+v", sr)
	}
	if sr.Scanned+sr.Skipped != db.Len() {
		t.Errorf("scanned %d + skipped %d != %d entries", sr.Scanned, sr.Skipped, db.Len())
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Entries != db.Len() || stats.SeedK != 4 || stats.Searches != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.EnginesBuilt == 0 || stats.PooledEngines == 0 {
		t.Errorf("engines must be built and pooled after a search, stats = %+v", stats)
	}
	// The per-shard gauges partition the global counts exactly.
	if stats.ShardCount != db.Shards() || len(stats.Shards) != db.Shards() {
		t.Fatalf("shard gauges: shard_count=%d len(shards)=%d, database has %d",
			stats.ShardCount, len(stats.Shards), db.Shards())
	}
	sum := 0
	for i, sh := range stats.Shards {
		if sh.Shard != i {
			t.Errorf("shards[%d] labeled %d", i, sh.Shard)
		}
		if sh.SnapshotAgeSeconds != -1 {
			t.Errorf("memory-only shard %d reports snapshot age %g", i, sh.SnapshotAgeSeconds)
		}
		sum += sh.Entries
	}
	if sum != stats.Entries {
		t.Errorf("per-shard entries sum to %d, global says %d", sum, stats.Entries)
	}
}

func TestSearchErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"bad json", `{"query":`, http.StatusBadRequest},
		{"unknown field", `{"query":"ACGT","workers":3}`, http.StatusBadRequest},
		{"missing query", `{"top_k":3}`, http.StatusBadRequest},
		{"bad symbol", `{"query":"ACGX"}`, http.StatusBadRequest},
		// A negative threshold is the disable sentinel, same as omitting it.
		{"negative threshold", `{"query":"ACGT","threshold":-1}`, http.StatusOK},
		{"query too long", fmt.Sprintf(`{"query":%q}`, strings.Repeat("A", 65)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postSearch(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d, want 405", resp.StatusCode)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New without a database must error")
	}
}

// TestConcurrentRequests hammers /search from many goroutines — the
// engine pools underneath must hand every in-flight race its own
// simulator, and every reply must match the serial golden report.
func TestConcurrentRequests(t *testing.T) {
	ts, _, entries := newTestServer(t)
	queries := []string{"ACGTACGT", "TTTTTTTT", "ACGTTGCA"}
	golden := make(map[string]*racelogic.SearchReport)
	for _, q := range queries {
		rep, err := racelogic.Search(q, entries, racelogic.WithTopK(10))
		if err != nil {
			t.Fatal(err)
		}
		golden[q] = rep
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(w+i)%len(queries)]
				resp, err := http.Post(ts.URL+"/search", "application/json",
					bytes.NewBufferString(fmt.Sprintf(`{"query":%q}`, q)))
				if err != nil {
					errs <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				want := golden[q]
				if len(sr.Results) != len(want.Results) {
					errs <- fmt.Errorf("query %s: %d results, want %d", q, len(sr.Results), len(want.Results))
					return
				}
				for i, r := range sr.Results {
					if r.Index != want.Results[i].Index || r.Score != want.Results[i].Score {
						errs <- fmt.Errorf("query %s rank %d: got (%d,%d), want (%d,%d)",
							q, i, r.Index, r.Score, want.Results[i].Index, want.Results[i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheHitDoesNotAliasResults is the regression test for the
// shallow-copy bug: a cache hit used to share its Results slice with the
// cached response, so a caller mutating its reply corrupted every later
// hit.  Mutate one hit and demand the next one is unaffected.
func TestCacheHitDoesNotAliasResults(t *testing.T) {
	c := newLRU(4)
	c.add("k", &SearchResponse{
		Query:   "ACGT",
		Results: []SearchResult{{Index: 0, ID: 0, Sequence: "ACGT", Score: 4}},
	})
	first, ok := c.get("k")
	if !ok {
		t.Fatal("expected a cache hit")
	}
	first.Results[0].Sequence = "CLOBBERED"
	first.Results[0].Score = -1
	first.Cached = true

	second, ok := c.get("k")
	if !ok {
		t.Fatal("expected a second cache hit")
	}
	if second.Results[0].Sequence != "ACGT" || second.Results[0].Score != 4 || second.Cached {
		t.Errorf("cache was corrupted through a returned response: %+v", second.Results[0])
	}
}

// TestLRUCapacityAccessor pins the synchronized accessor /stats uses.
func TestLRUCapacityAccessor(t *testing.T) {
	if got := newLRU(7).capacity(); got != 7 {
		t.Errorf("capacity() = %d, want 7", got)
	}
	if got := newLRU(0).capacity(); got != 0 {
		t.Errorf("capacity() = %d, want 0", got)
	}
}

// TestMutationEndpoints drives the live-mutation API end to end: insert
// via POST /entries, see the entry in the next search (the cache must
// not serve the pre-insert report), remove it via DELETE /entries/{id},
// and see it gone again.
func TestMutationEndpoints(t *testing.T) {
	ts, db, _ := newTestServer(t)
	query := "ACGTACGT"

	_, before := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, query))
	if before.Version != 0 {
		t.Fatalf("fresh database version = %d", before.Version)
	}

	// Insert a second exact match (lowercase: the server normalizes).
	resp, err := http.Post(ts.URL+"/entries", "application/json",
		bytes.NewBufferString(`{"entries":["acgtacgt"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /entries: status %d", resp.StatusCode)
	}
	var mut MutationResponse
	if err := json.NewDecoder(resp.Body).Decode(&mut); err != nil {
		t.Fatal(err)
	}
	if len(mut.IDs) != 1 || mut.Entries != db.Len() || mut.Version != 1 {
		t.Fatalf("insert response %+v, database len %d", mut, db.Len())
	}

	// The same query must now re-run (version changed, so the cached
	// pre-insert report is unreachable) and rank both exact matches.
	_, after := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, query))
	if after.Cached {
		t.Error("post-insert search served the stale cached report")
	}
	if after.Version != 1 {
		t.Errorf("post-insert report version = %d, want 1", after.Version)
	}
	exact := 0
	for _, r := range after.Results {
		if r.Sequence == query {
			exact++
		}
	}
	if exact != 2 {
		t.Errorf("found %d exact matches after insert, want 2", exact)
	}

	// Remove it again by stable ID.
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/entries/%d", ts.URL, mut.IDs[0]), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /entries/%d: status %d", mut.IDs[0], dresp.StatusCode)
	}
	_, final := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, query))
	exact = 0
	for _, r := range final.Results {
		if r.Sequence == query {
			exact++
		}
	}
	if exact != 1 || final.Version != 2 {
		t.Errorf("after delete: %d exact matches at version %d, want 1 at 2", exact, final.Version)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Version != 2 || stats.Mutations != 2 || stats.Entries != db.Len() {
		t.Errorf("stats after mutations: %+v", stats)
	}
	if stats.CacheCapacity != 8 {
		t.Errorf("cache capacity = %d, want 8", stats.CacheCapacity)
	}
}

// TestMutationEndpointErrors pins the failure surface: bad bodies, bad
// symbols, oversized entries, unknown and malformed IDs.
func TestMutationEndpointErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/entries", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(``); got != http.StatusBadRequest {
		t.Errorf("empty body: status %d", got)
	}
	if got := post(`{"entries":[]}`); got != http.StatusBadRequest {
		t.Errorf("no entries: status %d", got)
	}
	if got := post(`{"entries":["ACGX"]}`); got != http.StatusBadRequest {
		t.Errorf("bad symbol: status %d", got)
	}
	if got := post(fmt.Sprintf(`{"entries":[%q]}`, strings.Repeat("A", 65))); got != http.StatusBadRequest {
		t.Errorf("oversized entry: status %d (limit is 64)", got)
	}
	if got := post(`{"entries":["ACGT"],"nope":1}`); got != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", got)
	}

	del := func(id string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/entries/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del("9999"); got != http.StatusNotFound {
		t.Errorf("unknown ID: status %d, want 404", got)
	}
	if got := del("not-a-number"); got != http.StatusBadRequest {
		t.Errorf("malformed ID: status %d, want 400", got)
	}
	// Wrong methods on the mutation routes 405 via the mux patterns.
	resp, err := http.Get(ts.URL + "/entries")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /entries: status %d, want 405", resp.StatusCode)
	}
}

// TestBulkInsertFASTA streams a FASTA upload through /entries/bulk and
// checks the batch accounting plus searchability of the new entries.
func TestBulkInsertFASTA(t *testing.T) {
	ts, db, _ := newTestServer(t, racelogic.WithSeedIndex(4))
	upload := ">u1\nAAAACGTACGT\n>u2 split\nCCCC\nGGGG\n>u3\nTTTTAAAA\n"
	resp, err := http.Post(ts.URL+"/entries/bulk", "text/plain", strings.NewReader(upload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BulkInsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, br)
	}
	if br.Inserted != 3 || br.Batches != 1 || br.Entries != 8 || br.Error != "" {
		t.Fatalf("bulk response = %+v", br)
	}
	if br.FirstID == nil || br.LastID == nil || *br.LastID != *br.FirstID+2 {
		t.Fatalf("ID bracket = %v..%v", br.FirstID, br.LastID)
	}
	if db.Len() != 8 {
		t.Errorf("db has %d entries after bulk, want 8", db.Len())
	}
	// The multi-line record must have been concatenated and be findable.
	_, sr := postSearch(t, ts.URL, `{"query":"CCCCGGGG"}`)
	if sr == nil || len(sr.Results) == 0 || sr.Results[0].Sequence != "CCCCGGGG" {
		t.Errorf("bulk-inserted record not searchable: %+v", sr)
	}
}

// TestBulkInsertNDJSON covers the NDJSON content type, lowercase
// normalization, and plain-format uploads.
func TestBulkInsertNDJSON(t *testing.T) {
	ts, db, _ := newTestServer(t)
	body := "\"acgtacgtacgt\"\n\n\"TTTTCCCC\"\n"
	resp, err := http.Post(ts.URL+"/entries/bulk", "application/x-ndjson; charset=utf-8", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BulkInsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || br.Inserted != 2 {
		t.Fatalf("status %d, response %+v", resp.StatusCode, br)
	}
	if db.Len() != 7 {
		t.Errorf("db has %d entries, want 7", db.Len())
	}
	_, sr := postSearch(t, ts.URL, `{"query":"ACGTACGTACGT"}`)
	found := false
	if sr != nil {
		for _, r := range sr.Results {
			if r.Sequence == "ACGTACGTACGT" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("lowercase NDJSON entry must be uppercased and searchable: %+v", sr)
	}

	// Plain one-per-line works under the default content type too.
	resp2, err := http.Post(ts.URL+"/entries/bulk", "application/octet-stream", strings.NewReader("GGGGTTTT\nAAAATTTT\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("plain upload status %d", resp2.StatusCode)
	}
}

// TestBulkInsertErrors pins the failure modes: bad alphabet mid-stream,
// oversized entries, empty uploads, malformed NDJSON — each reported
// with the partial-progress accounting.
func TestBulkInsertErrors(t *testing.T) {
	ts, db, _ := newTestServer(t)
	before := db.Len()

	for name, c := range map[string]struct{ ct, body string }{
		"bad symbol":    {"text/plain", "ACGT\nACGN\n"},
		"empty upload":  {"text/plain", "# nothing\n"},
		"bad ndjson":    {"application/x-ndjson", "{\"entry\":\"ACGT\"}\n"},
		"fasta no data": {"text/plain", ">a\n>b\nACGT\n"},
	} {
		resp, err := http.Post(ts.URL+"/entries/bulk", c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var br BulkInsertResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || br.Error == "" {
			t.Errorf("%s: status %d, response %+v", name, resp.StatusCode, br)
		}
	}
	if db.Len() != before {
		t.Errorf("failed small uploads must land nothing: %d entries, want %d", db.Len(), before)
	}

	// An oversized entry fails the request but keeps the earlier batches:
	// partial progress is reported, not rolled back.
	long := strings.Repeat("A", 65)
	resp, err := http.Post(ts.URL+"/entries/bulk", "text/plain", strings.NewReader("ACGTACGT\n"+long+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BulkInsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(br.Error, "exceeds") {
		t.Fatalf("oversized entry: status %d, %+v", resp.StatusCode, br)
	}
}

// TestCompactEndpoint drives remove-then-compact over HTTP and checks
// the remap contract: IDs stable, slots renumbered as reported.
func TestCompactEndpoint(t *testing.T) {
	ts, db, _ := newTestServer(t)

	// Nothing to reclaim yet: a no-op with the current version.
	resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cr.Reclaimed != 0 || cr.Remap != nil || cr.Version != 0 {
		t.Fatalf("no-op compact = %+v (status %d)", cr, resp.StatusCode)
	}

	// Remove slot 0's entry (ID 0); the default policy (dead>live) does
	// not trigger on 1 of 5, so the tombstone waits for the manual call.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/entries/0", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if db.Tombstones() != 1 {
		t.Fatalf("tombstones = %d, want 1", db.Tombstones())
	}

	resp, err = http.Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Reclaimed != 1 || cr.Entries != 4 || len(cr.Remap) != 5 {
		t.Fatalf("compact = %+v", cr)
	}
	if cr.Remap[0] != -1 || cr.Remap[1] != 0 || cr.Remap[4] != 3 {
		t.Errorf("remap = %v: slot 0 dropped, the rest shifted down", cr.Remap)
	}
	if db.Tombstones() != 0 {
		t.Errorf("tombstones = %d after compact", db.Tombstones())
	}
}

// TestStatsDurability checks the new /stats fields against a durable
// database (journal tail, snapshot age) and a memory-only one.
func TestStatsDurability(t *testing.T) {
	ts, db, _ := newTestServer(t)
	getStats := func() StatsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := getStats()
	if st.Durable || st.WALRecords != 0 || st.SnapshotAgeSeconds != -1 {
		t.Fatalf("memory-only stats = %+v", st)
	}

	if err := db.Persist(t.TempDir(), racelogic.WithSnapshotInterval(0), racelogic.WithSnapshotEvery(0)); err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	resp, err := http.Post(ts.URL+"/entries", "application/json", strings.NewReader(`{"entries":["ACGTACGTAA"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st = getStats()
	if !st.Durable || st.WALRecords != 1 || st.WALBytes == 0 || st.SnapshotAgeSeconds < 0 {
		t.Fatalf("durable stats = %+v", st)
	}
	// The journaled insert's record shows up in exactly one shard's
	// gauges, and every durable shard reports a snapshot age.
	recs := int64(0)
	for _, sh := range st.Shards {
		recs += sh.WALRecords
		if sh.SnapshotAgeSeconds < 0 {
			t.Errorf("durable shard %d reports snapshot age %g", sh.Shard, sh.SnapshotAgeSeconds)
		}
	}
	if recs != st.WALRecords {
		t.Errorf("per-shard wal_records sum to %d, global says %d", recs, st.WALRecords)
	}
}

// postBatch POSTs an array-form /search body and decodes the array reply.
func postBatch(t *testing.T, url string, body string) (*http.Response, []SearchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/search", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var out []SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestSearchBatchEndpoint pins the array-form /search contract: one
// response per request in order, each byte-identical to the solo reply
// for the same query modulo the whole-batch EnginesBuilt count and the
// shared wall-clock stamp.
func TestSearchBatchEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, racelogic.WithBackend(racelogic.BackendLanes), racelogic.WithLaneWidth(128))
	// Solo replies come from a second identical server: on ts itself the
	// batch seeds the cache, so a follow-up solo request would just echo
	// the batch's own reply back.
	solos, _, _ := newTestServer(t, racelogic.WithBackend(racelogic.BackendLanes), racelogic.WithLaneWidth(128))
	queries := []string{"ACGTACGT", "acgtac", "TTTTTTTT"}
	var items []string
	for _, q := range queries {
		items = append(items, fmt.Sprintf(`{"query":%q,"top_k":3,"threshold":14}`, q))
	}
	resp, batch := postBatch(t, ts.URL, "["+strings.Join(items, ",")+"]")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(batch) != len(queries) {
		t.Fatalf("%d responses for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		_, solo := postSearch(t, solos.URL, fmt.Sprintf(`{"query":%q,"top_k":3,"threshold":14}`, q))
		got, want := batch[i], *solo
		got.ElapsedUS, want.ElapsedUS = 0, 0
		got.EnginesBuilt, want.EnginesBuilt = 0, 0
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		if !bytes.Equal(a, b) {
			t.Errorf("query %d: batch reply differs from solo:\nbatch: %s\nsolo:  %s", i, a, b)
		}
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Batches != 1 {
		t.Errorf("batches = %d, want 1", stats.Batches)
	}
	if stats.BatchQueries != int64(len(queries)) {
		t.Errorf("batch_queries = %d, want %d", stats.BatchQueries, len(queries))
	}
}

// TestSearchBatchCache pins the per-item cache interplay: batch items
// seed the same cache solo requests use, and a repeated batch is served
// entirely from it.
func TestSearchBatchCache(t *testing.T) {
	ts, _, _ := newTestServer(t)
	body := `[{"query":"ACGTACGT","top_k":3},{"query":"ACGTAC","top_k":3}]`
	_, first := postBatch(t, ts.URL, body)
	for i, r := range first {
		if r.Cached {
			t.Errorf("first batch item %d claims cached", i)
		}
	}
	_, second := postBatch(t, ts.URL, body)
	for i, r := range second {
		if !r.Cached {
			t.Errorf("repeat batch item %d missed the cache", i)
		}
	}
	// A solo request for one of the items hits the batch-seeded entry.
	_, solo := postSearch(t, ts.URL, `{"query":"ACGTAC","top_k":3}`)
	if !solo.Cached {
		t.Error("solo request missed the cache the batch seeded")
	}
	// A mixed batch races only the cold item.
	_, mixed := postBatch(t, ts.URL, `[{"query":"ACGTACGT","top_k":3},{"query":"TTTTTTTT","top_k":3}]`)
	if !mixed[0].Cached {
		t.Error("warm item of mixed batch missed the cache")
	}
	if mixed[1].Cached {
		t.Error("cold item of mixed batch claims cached")
	}
}

// TestSearchBatchErrors pins the array-form failure modes: empty
// batches, invalid items, and engine-level failures must all name the
// zero-based index of the query at fault.
func TestSearchBatchErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	cases := []struct {
		body, wantErr string
	}{
		{`[]`, "batch contains no queries"},
		{`[{"query":"ACGT"},{"query":""}]`, "query 1: query is required"},
		{`[{"query":"ACGT"},{"query":"` + strings.Repeat("A", 65) + `"}]`, "query 1: length 65 exceeds the 64-symbol limit"},
		{`[{"query":"ACGT"},{"query":"ACGTX"}]`, "query 1: "},
		{`[{"query":"ACGT","bogus":1}]`, "unknown"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if derr := json.NewDecoder(resp.Body).Decode(&e); derr != nil {
			t.Fatal(derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", tc.body, resp.StatusCode)
		}
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Errorf("body %s: error %q does not contain %q", tc.body, e.Error, tc.wantErr)
		}
	}
}
