package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"racelogic"
	"racelogic/internal/seqgen"
)

// testFASTA is a small mixed-length database with one exact hit and one
// near hit for the test query ACGTACGT.
const testFASTA = `>hit exact match
ACGTACGT
>near one substitution
ACGTACCT
>far all-T
TTTTTTTT
>short its own bucket
ACGTAC
>multi line record
ACGT
TCGA
`

// newTestServer loads testFASTA through the real file-reading path and
// serves it, mirroring what cmd/raceserve does.
func newTestServer(t *testing.T, opts ...racelogic.Option) (*httptest.Server, *racelogic.Database, []string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.fasta")
	if err := os.WriteFile(path, []byte(testFASTA), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := seqgen.ReadSequencesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("loaded %d entries from FASTA, want 5", len(entries))
	}
	db, err := racelogic.NewDatabase(entries, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DB: db, CacheSize: 8, DefaultTopK: 10, MaxQueryLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, db, entries
}

func postSearch(t *testing.T, url string, body string) (*http.Response, *SearchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/search", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return resp, &sr
}

// TestSearchEndToEnd is the FASTA-to-ranked-report integration test: the
// HTTP reply must carry exactly the report the library computes.
func TestSearchEndToEnd(t *testing.T) {
	ts, _, entries := newTestServer(t)
	query := "ACGTACGT"

	resp, got := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, query))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	want, err := racelogic.Search(query, entries, racelogic.WithTopK(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scanned != want.Scanned || got.Matched != want.Matched ||
		got.Buckets != want.Buckets || got.TotalCycles != want.TotalCycles {
		t.Errorf("aggregates differ: got %+v, want %+v", got, want)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i, r := range got.Results {
		w := want.Results[i]
		if r.Index != w.Index || r.Score != w.Score || r.Sequence != w.Sequence {
			t.Errorf("rank %d: got (%d, %d, %s), want (%d, %d, %s)",
				i, r.Index, r.Score, r.Sequence, w.Index, w.Score, w.Sequence)
		}
		if r.Metrics.Cycles != w.Metrics.Cycles || r.Metrics.EnergyJ != w.Metrics.EnergyJ {
			t.Errorf("rank %d: metrics differ: got %+v, want %+v", i, r.Metrics, w.Metrics)
		}
	}
	if got.Results[0].Sequence != query || got.Results[0].Score != int64(len(query)) {
		t.Errorf("top hit should be the exact match scoring %d, got %+v", len(query), got.Results[0])
	}
	if got.Cached {
		t.Error("first request must not be served from cache")
	}

	// Negative top_k overrides any truncation default: every match comes
	// back.
	_, all := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q,"top_k":-1}`, query))
	if len(all.Results) != all.Matched {
		t.Errorf("top_k=-1 returned %d of %d matches", len(all.Results), all.Matched)
	}

	// Queries are case-normalized like the database loaders' sequences.
	_, lower := postSearch(t, ts.URL, fmt.Sprintf(`{"query":%q}`, strings.ToLower(query)))
	if lower == nil || len(lower.Results) != len(got.Results) || lower.Results[0].Score != got.Results[0].Score {
		t.Errorf("lowercase query must behave like its uppercase twin, got %+v", lower)
	}
}

// TestSearchCache pins the LRU behavior: an identical repeat request is a
// hit with byte-identical report content, a different request is not.
func TestSearchCache(t *testing.T) {
	ts, _, _ := newTestServer(t)
	body := `{"query":"ACGTACGT","top_k":3,"threshold":12}`

	_, first := postSearch(t, ts.URL, body)
	_, second := postSearch(t, ts.URL, body)
	if !second.Cached {
		t.Error("identical repeat request must be served from cache")
	}
	first.Cached, second.Cached = false, false
	first.ElapsedUS, second.ElapsedUS = 0, 0
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Errorf("cached reply differs from original:\n%s\n%s", a, b)
	}

	_, third := postSearch(t, ts.URL, `{"query":"ACGTACGT","top_k":4,"threshold":12}`)
	if third.Cached {
		t.Error("request with different options must miss the cache")
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", stats.CacheHits)
	}
	if stats.Requests != 3 {
		t.Errorf("requests = %d, want 3", stats.Requests)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts, db, _ := newTestServer(t, racelogic.WithSeedIndex(4))

	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Entries != db.Len() {
		t.Errorf("healthz = %+v, want ok with %d entries", health, db.Len())
	}

	// The seeded query must skip the all-T entry.
	_, sr := postSearch(t, ts.URL, `{"query":"ACGTACGT"}`)
	if sr.Skipped == 0 {
		t.Errorf("seed index should skip dissimilar entries, report: %+v", sr)
	}
	if sr.Scanned+sr.Skipped != db.Len() {
		t.Errorf("scanned %d + skipped %d != %d entries", sr.Scanned, sr.Skipped, db.Len())
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Entries != db.Len() || stats.SeedK != 4 || stats.Searches != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.EnginesBuilt == 0 || stats.PooledEngines == 0 {
		t.Errorf("engines must be built and pooled after a search, stats = %+v", stats)
	}
}

func TestSearchErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"bad json", `{"query":`, http.StatusBadRequest},
		{"unknown field", `{"query":"ACGT","workers":3}`, http.StatusBadRequest},
		{"missing query", `{"top_k":3}`, http.StatusBadRequest},
		{"bad symbol", `{"query":"ACGX"}`, http.StatusBadRequest},
		// A negative threshold is the disable sentinel, same as omitting it.
		{"negative threshold", `{"query":"ACGT","threshold":-1}`, http.StatusOK},
		{"query too long", fmt.Sprintf(`{"query":%q}`, strings.Repeat("A", 65)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postSearch(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d, want 405", resp.StatusCode)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New without a database must error")
	}
}

// TestConcurrentRequests hammers /search from many goroutines — the
// engine pools underneath must hand every in-flight race its own
// simulator, and every reply must match the serial golden report.
func TestConcurrentRequests(t *testing.T) {
	ts, _, entries := newTestServer(t)
	queries := []string{"ACGTACGT", "TTTTTTTT", "ACGTTGCA"}
	golden := make(map[string]*racelogic.SearchReport)
	for _, q := range queries {
		rep, err := racelogic.Search(q, entries, racelogic.WithTopK(10))
		if err != nil {
			t.Fatal(err)
		}
		golden[q] = rep
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(w+i)%len(queries)]
				resp, err := http.Post(ts.URL+"/search", "application/json",
					bytes.NewBufferString(fmt.Sprintf(`{"query":%q}`, q)))
				if err != nil {
					errs <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				want := golden[q]
				if len(sr.Results) != len(want.Results) {
					errs <- fmt.Errorf("query %s: %d results, want %d", q, len(sr.Results), len(want.Results))
					return
				}
				for i, r := range sr.Results {
					if r.Index != want.Results[i].Index || r.Score != want.Results[i].Score {
						errs <- fmt.Errorf("query %s rank %d: got (%d,%d), want (%d,%d)",
							q, i, r.Index, r.Score, want.Results[i].Index, want.Results[i].Score)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
