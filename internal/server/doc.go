// Package server is the long-running search service of the subsystem:
// an HTTP JSON API that serves concurrent similarity queries against one
// loaded racelogic.Database — the million-user, many-queries-one-database
// scenario the paper's Section 1 workload implies at system scale.
//
// The endpoints:
//
//   - POST /search races a query against the database and returns the
//     ranked report with per-request hardware metrics (cycles, energy,
//     latency, area, power density — the paper's Section 4.1 accounting)
//     and the database version it reflects;
//   - POST /entries inserts sequences into the live database, returning
//     their stable IDs; DELETE /entries/{id} removes one by stable ID
//     (404 when unknown) — the service never restarts to change corpus;
//   - POST /entries/bulk streams a whole corpus upload — NDJSON (one
//     JSON string per line) or FASTA/plain text, auto-detected — into
//     the database in journaled batches without buffering the body, the
//     live-import path for large collections;
//   - POST /compact is the manual admin trigger for a dense rebuild; it
//     returns the old→new slot remap so clients holding slot indices can
//     rebind (entry IDs are the stable handle and never change);
//   - GET /healthz is the liveness probe;
//   - GET /stats reports the database version, live entry and tombstone
//     counts, durability state (journal tail size, sealed segment
//     count, snapshot age and save counts), cumulative service
//     counters (searches, mutations and compactions served, engines
//     compiled and pooled, cache hits, uptime), and a shards[] array
//     with one gauge set per partition — entries, tombstones,
//     wal_records, wal_bytes, wal_segments, snapshot_age_seconds — so
//     skew and per-shard replay debt are visible at a glance.
//
// The handler is safe for concurrent requests because Database.Search
// is: each in-flight race checks a compiled simulator out of a per-shape
// engine pool, and runs against one immutable snapshot even while
// mutations land.  A bounded LRU cache short-circuits repeated identical
// queries — the common case when many users search for the same new
// sequence — returning a private copy of the cached report with
// Cached=true.  Cache keys embed the database version, so every
// mutation implicitly invalidates all older cached reports.
package server
