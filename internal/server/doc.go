// Package server is the long-running search service of the subsystem:
// an HTTP JSON API that serves concurrent similarity queries against one
// loaded racelogic.Database — the million-user, many-queries-one-database
// scenario the paper's Section 1 workload implies at system scale.
//
// Three endpoints:
//
//   - POST /search races a query against the database and returns the
//     ranked report with per-request hardware metrics (cycles, energy,
//     latency, area, power density — the paper's Section 4.1 accounting);
//   - GET /healthz is the liveness probe;
//   - GET /stats reports cumulative service counters: searches served,
//     engines compiled and pooled, cache hits, uptime.
//
// The handler is safe for concurrent requests because Database.Search
// is: each in-flight race checks a compiled simulator out of a per-shape
// engine pool.  A bounded LRU cache short-circuits repeated identical
// queries — the common case when many users search for the same new
// sequence — returning the cached report with Cached=true.
package server
