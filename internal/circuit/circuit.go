package circuit

import (
	"errors"
	"fmt"
)

// Net identifies a single wire in a netlist.  Net 0 is the constant-zero
// net and net 1 the constant-one net of every netlist.
type Net int32

// Predefined constant nets present in every netlist.
const (
	Zero Net = 0
	One  Net = 1
)

// Kind enumerates the primitive standard cells.
type Kind uint8

// The primitive cell kinds.  These mirror the cells available in the
// paper's AMIS/OSU 0.5µm standard-cell libraries.
const (
	KindInput Kind = iota // external input pin
	KindConst             // the two constant nets
	KindBuf               // buffer / identity
	KindNot
	KindAnd // n-ary
	KindOr  // n-ary
	KindXor // 2-input
	KindXnor
	KindMux2 // inputs: [sel, a, b] → sel ? b : a
	KindDFF  // inputs: [d] or [d, enable]; output is Q
	numKinds
)

var kindNames = [numKinds]string{
	"input", "const", "buf", "not", "and", "or", "xor", "xnor", "mux2", "dff",
}

// String returns the lowercase cell name ("and", "dff", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSequential reports whether the kind holds state across clock edges.
func (k Kind) IsSequential() bool { return k == KindDFF }

// allKinds is precomputed once: Kinds sits on per-race hot paths (the
// energy model enumerates it for every alignment in a batch search).
var allKinds = func() []Kind {
	ks := make([]Kind, numKinds)
	for k := range ks {
		ks[k] = Kind(k)
	}
	return ks
}()

// Kinds lists every primitive cell kind in declaration order.  Consumers
// that fold per-kind maps into floating-point totals iterate this instead
// of ranging the map, so the summation order — and the last bit of the
// result — is deterministic.  The returned slice is shared; do not
// mutate it.
func Kinds() []Kind { return allKinds }

// gate is one instantiated cell.  Its output net ID equals its index + 2
// (offset past the two constant nets) — every net is driven by exactly one
// gate, so gates and nets are stored in lockstep.
type gate struct {
	kind Kind
	in   []Net
	// name is set for inputs and optionally for probed nets.
	name string
	// init is the power-on value for DFFs (the paper initializes all
	// flip-flops to 0 before a race; tests also exercise init-1 latches).
	init bool
}

// Netlist accumulates gates.  It is not safe for concurrent use; build the
// whole circuit on one goroutine, then Compile.
type Netlist struct {
	gates []gate // gates[i] drives net Net(i+2)
	names map[string]Net
	numIn int
	numFF int
	// kindCount and fanInCount cache the per-kind tallies behind
	// CountByKind and FanIn.  The accounting hot paths ask for them once
	// per candidate (once per lane per pack on the lanes backend), and
	// re-walking every gate there costs more than the race itself on
	// small arrays.  A gate's kind and input arity never change after
	// add — later rewiring only swaps nets inside existing in slots —
	// so the caches are invalidated only when a gate is appended.
	kindCount  map[Kind]int
	fanInCount map[Kind]int
}

// New returns an empty netlist containing only the constant nets.
func New() *Netlist {
	return &Netlist{names: make(map[string]Net)}
}

// NumGates returns the number of instantiated cells, excluding the
// constant nets but including input pins.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumNets returns the total number of nets including the two constants.
func (n *Netlist) NumNets() int { return len(n.gates) + 2 }

// NumInputs returns the number of external input pins.
func (n *Netlist) NumInputs() int { return n.numIn }

// NumDFFs returns the number of flip-flops.
func (n *Netlist) NumDFFs() int { return n.numFF }

// CountByKind returns the number of gates of each kind; the tech package
// turns this into area and capacitance totals.  The result is the
// caller's to mutate: it is a fresh copy of a tally cached on the
// netlist, so repeated calls cost O(kinds), not O(gates).
func (n *Netlist) CountByKind() map[Kind]int {
	if n.kindCount == nil {
		m := make(map[Kind]int, numKinds)
		for _, g := range n.gates {
			m[g.kind]++
		}
		n.kindCount = m
	}
	return copyKindMap(n.kindCount)
}

// FanIn returns the fan-in count of each gate kind summed over the whole
// netlist; used by the capacitance model (each input pin contributes its
// gate capacitance to the net driving it).  Cached and copied like
// CountByKind.
func (n *Netlist) FanIn() map[Kind]int {
	if n.fanInCount == nil {
		m := make(map[Kind]int, numKinds)
		for _, g := range n.gates {
			m[g.kind] += len(g.in)
		}
		n.fanInCount = m
	}
	return copyKindMap(n.fanInCount)
}

func copyKindMap(src map[Kind]int) map[Kind]int {
	dst := make(map[Kind]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func (n *Netlist) add(g gate) Net {
	n.gates = append(n.gates, g)
	n.kindCount, n.fanInCount = nil, nil
	return Net(len(n.gates) + 1) // +2 offset, -1 for newly appended index
}

func (n *Netlist) driver(net Net) (gate, bool) {
	i := int(net) - 2
	if i < 0 || i >= len(n.gates) {
		return gate{}, false
	}
	return n.gates[i], true
}

func (n *Netlist) checkNets(op string, nets ...Net) {
	for _, x := range nets {
		if int(x) < 0 || int(x) >= n.NumNets() {
			panic(fmt.Sprintf("circuit: %s references undefined net %d", op, x))
		}
	}
}

// Input declares an external input pin with a unique name.
func (n *Netlist) Input(name string) Net {
	if name == "" {
		panic("circuit: Input requires a name")
	}
	if _, dup := n.names[name]; dup {
		panic(fmt.Sprintf("circuit: duplicate input name %q", name))
	}
	net := n.add(gate{kind: KindInput, name: name})
	n.names[name] = net
	n.numIn++
	return net
}

// InputNet returns the net of a previously declared input.
func (n *Netlist) InputNet(name string) (Net, error) {
	net, ok := n.names[name]
	if !ok {
		return 0, fmt.Errorf("circuit: no input named %q", name)
	}
	return net, nil
}

// Buf inserts a buffer driving a fresh net equal to a.
func (n *Netlist) Buf(a Net) Net {
	n.checkNets("buf", a)
	return n.add(gate{kind: KindBuf, in: []Net{a}})
}

// Not returns ¬a.
func (n *Netlist) Not(a Net) Net {
	n.checkNets("not", a)
	return n.add(gate{kind: KindNot, in: []Net{a}})
}

// And returns the conjunction of its inputs.  With zero inputs it returns
// the constant One (the identity of AND); with one input it returns that
// net unchanged rather than wasting a cell.
func (n *Netlist) And(ins ...Net) Net {
	n.checkNets("and", ins...)
	switch len(ins) {
	case 0:
		return One
	case 1:
		return ins[0]
	}
	return n.add(gate{kind: KindAnd, in: append([]Net(nil), ins...)})
}

// Or returns the disjunction of its inputs.  With zero inputs it returns
// the constant Zero; with one input it returns that net unchanged.
func (n *Netlist) Or(ins ...Net) Net {
	n.checkNets("or", ins...)
	switch len(ins) {
	case 0:
		return Zero
	case 1:
		return ins[0]
	}
	return n.add(gate{kind: KindOr, in: append([]Net(nil), ins...)})
}

// Xor returns a ⊕ b.
func (n *Netlist) Xor(a, b Net) Net {
	n.checkNets("xor", a, b)
	return n.add(gate{kind: KindXor, in: []Net{a, b}})
}

// Xnor returns ¬(a ⊕ b) — the matching-condition gate of Eq. 2 in the
// paper (M(i,j) = 1 iff the compared symbols are equal).
func (n *Netlist) Xnor(a, b Net) Net {
	n.checkNets("xnor", a, b)
	return n.add(gate{kind: KindXnor, in: []Net{a, b}})
}

// Mux2 returns sel ? b : a.
func (n *Netlist) Mux2(sel, a, b Net) Net {
	n.checkNets("mux2", sel, a, b)
	return n.add(gate{kind: KindMux2, in: []Net{sel, a, b}})
}

// DFF instantiates a D flip-flop with power-on value 0 that samples d on
// every rising clock edge.  The returned net is Q.
func (n *Netlist) DFF(d Net) Net {
	n.checkNets("dff", d)
	n.numFF++
	return n.add(gate{kind: KindDFF, in: []Net{d}})
}

// DFFE instantiates a clock-enabled D flip-flop: Q updates from d only on
// cycles where enable is 1.  This is the cell the Section 4.3 clock-gating
// study gates region-by-region.
func (n *Netlist) DFFE(d, enable Net) Net {
	n.checkNets("dffe", d, enable)
	n.numFF++
	return n.add(gate{kind: KindDFF, in: []Net{d, enable}})
}

// DFFInit instantiates a D flip-flop with an explicit power-on value.
func (n *Netlist) DFFInit(d Net, init bool) Net {
	n.checkNets("dff", d)
	n.numFF++
	return n.add(gate{kind: KindDFF, in: []Net{d}, init: init})
}

// PatchEnable rewires the enable pin of a previously created DFFE.  Gated
// fabrics need this: a region's flip-flops must exist before the region's
// enable logic (which reads their Q nets) can be built.
func (n *Netlist) PatchEnable(q, enable Net) error {
	g, ok := n.driver(q)
	if !ok || g.kind != KindDFF || len(g.in) != 2 {
		return fmt.Errorf("circuit: PatchEnable target %d is not a DFFE", q)
	}
	n.checkNets("patch-enable", enable)
	n.gates[int(q)-2].in[1] = enable
	return nil
}

// ErrCombLoop is returned by Compile when the combinational logic (the
// graph of all non-DFF gates) contains a cycle.  Races through such loops
// are electrical hazards, not Race Logic.
var ErrCombLoop = errors.New("circuit: combinational loop detected")
