package circuit

import "racelogic/internal/temporal"

// Backend is the simulation contract a compiled netlist runs under.  The
// cycle-accurate Simulator is the reference implementation; the
// event-driven engine in circuit/event is the fast one, proven
// arrival- and activity-identical by the internal/oracle differential
// suite.  Everything the race arrays and the energy model consume —
// per-net first-arrival times, cumulative toggle counts, the clocked
// flip-flop total — is part of the contract, so two backends that both
// satisfy it produce byte-identical AlignResults and SearchReports.
type Backend interface {
	// Reset returns the backend to the state compilation left it in:
	// flip-flops at power-on values, inputs at 0, cycle 0, toggle and
	// arrival accounting cleared — without re-levelizing the netlist.
	Reset()
	// SetInput drives an external input pin; the change settles
	// immediately in the current cycle and is accounted.
	SetInput(net Net, v bool)
	// SetInputName drives an input pin by name.
	SetInputName(name string, v bool) error
	// Step advances the simulation by one clock cycle: clock edge, then
	// combinational settle, then toggle/arrival accounting.
	Step()
	// Run advances the simulation by k cycles.
	Run(k int)
	// RunUntil steps until net first carries a 1 and returns the arrival
	// time, or temporal.Never if it has not arrived after maxCycles.
	RunUntil(net Net, maxCycles int) temporal.Time
	// Cycle returns the number of Steps taken so far.
	Cycle() int
	// Value returns the current settled value of a net.
	Value(net Net) bool
	// Arrival returns the cycle at which the net first carried a 1, or
	// temporal.Never.
	Arrival(net Net) temporal.Time
	// Toggles returns the cumulative toggle count of a net.
	Toggles(net Net) uint64
	// Activity summarizes the simulation so far for the energy model.
	Activity() Activity
}

// The cycle-accurate Simulator is the reference Backend.
var _ Backend = (*Simulator)(nil)

// Gate describes one instantiated cell — the read-only view an
// alternative backend compiles the netlist from.  The In slice is shared
// with the netlist; callers must not mutate it.
type Gate struct {
	// Kind is the primitive cell kind.
	Kind Kind
	// In lists the input nets (see the per-kind pin conventions on the
	// Netlist builder methods; a DFF has [d] or [d, enable]).
	In []Net
	// Init is the power-on value for DFFs.
	Init bool
	// Name is set for inputs and optionally for probed nets.
	Name string
}

// Gate returns the cell driving net Net(i+2) — gates and nets are stored
// in lockstep, so i ranges over [0, NumGates).
func (n *Netlist) Gate(i int) Gate {
	g := n.gates[i]
	return Gate{Kind: g.kind, In: g.in, Init: g.init, Name: g.name}
}
