package circuit

import (
	"testing"

	"racelogic/internal/temporal"
)

func TestConstants(t *testing.T) {
	n := New()
	s := n.MustCompile()
	if s.Value(Zero) {
		t.Error("Zero net should be false")
	}
	if !s.Value(One) {
		t.Error("One net should be true")
	}
	s.Step()
	if s.Value(Zero) || !s.Value(One) {
		t.Error("constants must hold across cycles")
	}
}

func TestCombinationalGates(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	and := n.And(a, b)
	or := n.Or(a, b)
	xor := n.Xor(a, b)
	xnor := n.Xnor(a, b)
	not := n.Not(a)
	buf := n.Buf(a)
	mux := n.Mux2(a, b, One) // a ? 1 : b
	s := n.MustCompile()

	cases := []struct {
		av, bv                                   bool
		wAnd, wOr, wXor, wXnor, wNot, wBuf, wMux bool
	}{
		{false, false, false, false, false, true, true, false, false},
		{false, true, false, true, true, false, true, false, true},
		{true, false, false, true, true, false, false, true, true},
		{true, true, true, true, false, true, false, true, true},
	}
	for _, c := range cases {
		s.SetInput(a, c.av)
		s.SetInput(b, c.bv)
		s.Step()
		check := func(name string, net Net, want bool) {
			if got := s.Value(net); got != want {
				t.Errorf("a=%v b=%v: %s = %v, want %v", c.av, c.bv, name, got, want)
			}
		}
		check("and", and, c.wAnd)
		check("or", or, c.wOr)
		check("xor", xor, c.wXor)
		check("xnor", xnor, c.wXnor)
		check("not", not, c.wNot)
		check("buf", buf, c.wBuf)
		check("mux", mux, c.wMux)
	}
}

func TestDegenerateAndOr(t *testing.T) {
	n := New()
	a := n.Input("a")
	if n.And() != One {
		t.Error("0-ary AND must be constant One")
	}
	if n.Or() != Zero {
		t.Error("0-ary OR must be constant Zero")
	}
	if n.And(a) != a || n.Or(a) != a {
		t.Error("1-ary AND/OR must be the identity")
	}
}

func TestNaryGates(t *testing.T) {
	n := New()
	ins := make([]Net, 5)
	for i := range ins {
		ins[i] = n.Input(string(rune('a' + i)))
	}
	and := n.And(ins...)
	or := n.Or(ins...)
	s := n.MustCompile()
	for i := range ins {
		s.SetInput(ins[i], true)
	}
	s.Step()
	if !s.Value(and) || !s.Value(or) {
		t.Error("all-ones: AND and OR should be 1")
	}
	s.SetInput(ins[2], false)
	s.Step()
	if s.Value(and) {
		t.Error("one zero input must kill a 5-ary AND")
	}
	if !s.Value(or) {
		t.Error("OR must survive one zero input")
	}
}

func TestDFFDelaysByOneCycle(t *testing.T) {
	n := New()
	a := n.Input("a")
	q := n.DFF(a)
	s := n.MustCompile()
	if s.Value(q) {
		t.Error("DFF must power on at 0")
	}
	s.SetInput(a, true)
	// The settled combinational value sees a=1 but Q is still old.
	s.Step()
	if !s.Value(q) {
		t.Error("Q should be 1 one cycle after D went 1")
	}
	s.SetInput(a, false)
	s.Step()
	if s.Value(q) {
		t.Error("Q should track D with one cycle of delay")
	}
}

func TestDFFInit(t *testing.T) {
	n := New()
	q := n.DFFInit(Zero, true)
	s := n.MustCompile()
	if !s.Value(q) {
		t.Error("DFFInit(1) must power on at 1")
	}
	s.Step()
	if s.Value(q) {
		t.Error("after one clock Q must have sampled D=0")
	}
}

func TestDFFEHoldsWhenDisabled(t *testing.T) {
	n := New()
	d := n.Input("d")
	en := n.Input("en")
	q := n.DFFE(d, en)
	s := n.MustCompile()
	s.SetInput(d, true)
	s.SetInput(en, false)
	s.Step()
	if s.Value(q) {
		t.Error("disabled DFFE must hold 0")
	}
	s.SetInput(en, true)
	s.Step()
	if !s.Value(q) {
		t.Error("enabled DFFE must sample D")
	}
	s.SetInput(d, false)
	s.SetInput(en, false)
	s.Step()
	if !s.Value(q) {
		t.Error("disabled DFFE must hold its 1")
	}
}

func TestDelayChainArrival(t *testing.T) {
	n := New()
	a := n.Input("a")
	d5 := n.DelayChain(a, 5)
	d0 := n.DelayChain(a, 0)
	s := n.MustCompile()
	s.SetInput(a, true)
	got := s.RunUntil(d5, 100)
	if got != 5 {
		t.Errorf("5-stage delay chain arrival = %v, want 5", got)
	}
	if d0 != a {
		t.Error("0-stage delay chain must be the input net itself")
	}
}

func TestDelayChainNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n := New()
	n.DelayChain(n.Input("a"), -1)
}

func TestCombinationalLoopDetected(t *testing.T) {
	n := New()
	a := n.Input("a")
	// Build or1 = OR(a, placeholder), then patch the placeholder to close
	// a purely combinational loop through an AND.
	or1 := n.Or(a, Zero)
	and1 := n.And(or1, One)
	n.gates[int(or1)-2].in[1] = and1
	if _, err := n.Compile(); err != ErrCombLoop {
		t.Errorf("Compile = %v, want ErrCombLoop", err)
	}
}

func TestLoopThroughDFFIsFine(t *testing.T) {
	n := New()
	trig := n.Input("t")
	latched, _ := n.StickyLatch(trig)
	if _, err := n.Compile(); err != nil {
		t.Errorf("feedback through a DFF must compile: %v", err)
	}
	_ = latched
}

func TestStickyLatch(t *testing.T) {
	n := New()
	trig := n.Input("t")
	latched, imm := n.StickyLatch(trig)
	s := n.MustCompile()
	s.Step()
	if s.Value(latched) || s.Value(imm) {
		t.Error("latch must stay 0 before any trigger")
	}
	s.SetInput(trig, true)
	s.Step()
	if !s.Value(imm) {
		t.Error("immediate view must go high with the trigger")
	}
	s.SetInput(trig, false) // one-cycle pulse
	s.Step()
	if !s.Value(latched) || !s.Value(imm) {
		t.Error("latch must hold after a one-cycle pulse")
	}
	s.Run(10)
	if !s.Value(latched) {
		t.Error("latch must hold indefinitely")
	}
}

func TestSatCounterCountsAndSaturates(t *testing.T) {
	n := New()
	en := n.Input("en")
	bus := n.SatCounter(3, en) // saturates at 7
	s := n.MustCompile()
	read := func() int {
		v := 0
		for i, b := range bus {
			if s.Value(b) {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	if read() != 0 {
		t.Fatalf("counter must power on at 0, got %d", read())
	}
	s.SetInput(en, true)
	for want := 1; want <= 7; want++ {
		s.Step()
		if read() != want {
			t.Fatalf("after %d enabled cycles counter = %d", want, read())
		}
	}
	s.Run(5)
	if read() != 7 {
		t.Errorf("counter must saturate at 7, got %d", read())
	}
	// Disable: must hold.
	s.SetInput(en, false)
	s.Step()
	if read() != 7 {
		t.Errorf("disabled counter must hold, got %d", read())
	}
}

func TestSatCounterHoldsWhileDisabled(t *testing.T) {
	n := New()
	en := n.Input("en")
	bus := n.SatCounter(4, en)
	s := n.MustCompile()
	s.SetInput(en, true)
	s.Run(5)
	s.SetInput(en, false)
	s.Run(7)
	v := 0
	for i, b := range bus {
		if s.Value(b) {
			v |= 1 << uint(i)
		}
	}
	if v != 5 {
		t.Errorf("counter = %d after 5 enabled + 7 disabled cycles, want 5", v)
	}
}

func TestEqualsConst(t *testing.T) {
	n := New()
	en := n.Input("en")
	bus := n.SatCounter(3, en)
	eq5 := n.EqualsConst(bus, 5)
	eq0 := n.EqualsConst(bus, 0)
	s := n.MustCompile()
	if !s.Value(eq0) {
		t.Error("eq0 must be 1 at power-on")
	}
	s.SetInput(en, true)
	got := s.RunUntil(eq5, 100)
	if got != 5 {
		t.Errorf("counter reaches 5 at cycle %v, want 5", got)
	}
}

func TestEqualsConstValidation(t *testing.T) {
	n := New()
	bus := []Net{One, Zero}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range constant")
		}
	}()
	n.EqualsConst(bus, 4)
}

func TestMuxN(t *testing.T) {
	n := New()
	s0 := n.Input("s0")
	s1 := n.Input("s1")
	// inputs[i] = 1 iff i == 2 (s1=1, s0=0)
	out := n.MuxN([]Net{s0, s1}, []Net{Zero, Zero, One, Zero})
	s := n.MustCompile()
	for i := 0; i < 4; i++ {
		s.SetInput(s0, i&1 == 1)
		s.SetInput(s1, i&2 == 2)
		s.Step()
		want := i == 2
		if s.Value(out) != want {
			t.Errorf("sel=%d: out = %v, want %v", i, s.Value(out), want)
		}
	}
}

func TestMuxNValidation(t *testing.T) {
	n := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input count")
		}
	}()
	n.MuxN([]Net{One}, []Net{Zero, One, Zero})
}

func TestConstBus(t *testing.T) {
	n := New()
	bus := n.ConstBus(4, 0b1010)
	want := []Net{Zero, One, Zero, One}
	for i := range bus {
		if bus[i] != want[i] {
			t.Errorf("ConstBus bit %d = %v, want %v", i, bus[i], want[i])
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9}
	for v, want := range cases {
		if got := BitsFor(v); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestToggleCounting(t *testing.T) {
	n := New()
	a := n.Input("a")
	inv := n.Not(a)
	s := n.MustCompile()
	for i := 0; i < 10; i++ {
		s.SetInput(a, i%2 == 0)
		s.Step()
	}
	// a toggles on every step (0→1,1→0,...): 10 toggles; inv likewise.
	if got := s.Toggles(a); got != 10 {
		t.Errorf("input toggles = %d, want 10", got)
	}
	if got := s.Toggles(inv); got != 10 {
		t.Errorf("inverter toggles = %d, want 10", got)
	}
}

func TestActivityReport(t *testing.T) {
	n := New()
	a := n.Input("a")
	q := n.DFF(a)
	n.And(q, a)
	s := n.MustCompile()
	s.SetInput(a, true)
	s.Run(4)
	act := s.Activity()
	if act.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", act.Cycles)
	}
	if act.NumDFFs != 1 {
		t.Errorf("NumDFFs = %d, want 1", act.NumDFFs)
	}
	if act.FFClockedCycles != 4 {
		t.Errorf("FFClockedCycles = %d, want 4 (ungated DFF clocks every cycle)", act.FFClockedCycles)
	}
	if act.GateCount[KindAnd] != 1 || act.GateCount[KindDFF] != 1 || act.GateCount[KindInput] != 1 {
		t.Errorf("GateCount = %v", act.GateCount)
	}
	if act.TotalNetToggles() == 0 {
		t.Error("expected some toggles")
	}
}

func TestGatedFFClockedCycles(t *testing.T) {
	n := New()
	d := n.Input("d")
	en := n.Input("en")
	n.DFFE(d, en)
	s := n.MustCompile()
	s.SetInput(en, true)
	s.Run(3)
	s.SetInput(en, false)
	s.Run(5)
	act := s.Activity()
	if act.FFClockedCycles != 3 {
		t.Errorf("FFClockedCycles = %d, want 3 (only enabled cycles count)", act.FFClockedCycles)
	}
}

func TestRunUntilNeverArrives(t *testing.T) {
	n := New()
	a := n.Input("a")
	d := n.DelayChain(a, 3)
	s := n.MustCompile()
	// a stays 0: the edge never arrives.
	if got := s.RunUntil(d, 20); got != temporal.Never {
		t.Errorf("RunUntil = %v, want Never", got)
	}
	if s.Cycle() != 20 {
		t.Errorf("Cycle = %d, want 20 (ran to the bound)", s.Cycle())
	}
}

func TestArrivalTimeZero(t *testing.T) {
	n := New()
	a := n.Input("a")
	s := n.MustCompile()
	s.SetInput(a, true)
	// Inputs take effect immediately: the injected "1" arrives at cycle 0.
	if got := s.Arrival(a); got != 0 {
		t.Errorf("Arrival = %v, want 0", got)
	}
	if got := s.Arrival(One); got != 0 {
		t.Errorf("constant One arrival = %v, want 0", got)
	}
}

func TestSetInputOnNonInputPanics(t *testing.T) {
	n := New()
	a := n.Input("a")
	inv := n.Not(a)
	s := n.MustCompile()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.SetInput(inv, true)
}

func TestInputNameLookup(t *testing.T) {
	n := New()
	a := n.Input("alpha")
	got, err := n.InputNet("alpha")
	if err != nil || got != a {
		t.Errorf("InputNet = %v, %v", got, err)
	}
	if _, err := n.InputNet("missing"); err == nil {
		t.Error("expected error for unknown input")
	}
	s := n.MustCompile()
	if err := s.SetInputName("alpha", true); err != nil {
		t.Error(err)
	}
	if err := s.SetInputName("missing", true); err == nil {
		t.Error("expected error")
	}
}

func TestDuplicateInputPanics(t *testing.T) {
	n := New()
	n.Input("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate input name")
		}
	}()
	n.Input("x")
}

func TestNetlistCounters(t *testing.T) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	n.DFF(n.And(a, b))
	if n.NumInputs() != 2 {
		t.Errorf("NumInputs = %d", n.NumInputs())
	}
	if n.NumDFFs() != 1 {
		t.Errorf("NumDFFs = %d", n.NumDFFs())
	}
	if n.NumGates() != 4 {
		t.Errorf("NumGates = %d, want 4 (2 inputs + and + dff)", n.NumGates())
	}
	if n.NumNets() != 6 {
		t.Errorf("NumNets = %d, want 6", n.NumNets())
	}
	fi := n.FanIn()
	if fi[KindAnd] != 2 || fi[KindDFF] != 1 {
		t.Errorf("FanIn = %v", fi)
	}
}

func TestKindString(t *testing.T) {
	if KindAnd.String() != "and" || KindDFF.String() != "dff" {
		t.Error("Kind.String wrong")
	}
	if !KindDFF.IsSequential() || KindOr.IsSequential() {
		t.Error("IsSequential wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind must still render")
	}
}
