// Package circuit is a structural gate-level netlist builder and
// cycle-accurate simulator.
//
// The paper evaluates Race Logic by writing parameterized Verilog,
// synthesizing it with Synopsys Design Vision, and extracting per-net
// toggle activity with Modelsim for Primetime power analysis.  This
// package rebuilds that measurement pipeline in Go: circuits are
// constructed from the same primitive standard cells the paper's designs
// use (n-ary AND/OR, NOT, XOR, XNOR, 2:1 MUX, and D flip-flops with
// optional clock enable), simulated one clock cycle at a time, and
// instrumented with per-net toggle counts and per-kind gate counts that
// internal/tech converts to area, energy and power exactly as Primetime
// would (activity × capacitance × Vdd²).
//
// The builder half of the package (Netlist) is write-once: gates and nets
// are appended, then Compile levelizes the combinational logic (detecting
// combinational loops) and returns an immutable Simulator.
//
// Simulation is abstracted behind the Backend interface, which two
// engines implement: the Simulator in this package — the cycle-accurate
// reference, settling the whole netlist every clock edge exactly as the
// paper's Verilog/Modelsim loop did — and the event-driven engine in
// the circuit/event subpackage, which propagates only actual net
// changes and fast-forwards over quiescent stretches.  The two are
// contractually byte-identical in every observable (values, arrival
// times, toggle counts, clocked-cycle counts, the Activity report); the
// differential harness in internal/oracle enforces that contract with
// property tests and fuzzing, keeping this Simulator as the oracle and
// the event engine as the fast path.
package circuit
