package circuit

import (
	"fmt"

	"racelogic/internal/temporal"
)

// Simulator executes a compiled netlist one clock cycle at a time.  A
// cycle consists of (1) settling the combinational logic given the current
// external inputs and flip-flop states, then (2) clocking every enabled
// flip-flop.  The simulator records, per net, the total number of toggles
// and the first cycle at which the net carried a 1 — the two measurements
// from which internal/tech derives dynamic energy (the paper's Primetime
// methodology) and race arrival times (the paper's information
// representation).
type Simulator struct {
	n *Netlist

	// order lists combinational gate indices in dependency order.
	order []int32

	vals    []bool  // current value of every net
	prev    []bool  // value at the previous cycle, for toggle detection
	ffState []bool  // Q of every DFF, indexed by ffIndex
	ffIndex []int32 // gate index → flip-flop slot, or -1
	ffGates []int32 // flip-flop slots → gate index

	inputs map[Net]bool

	cycle int

	toggles  []uint64 // per-net cumulative toggle count
	firstOne []int32  // per-net cycle of first 1, or -1

	// ffClockedCycles accumulates, over all cycles, the number of
	// flip-flops whose clock was active that cycle (all plain DFFs plus
	// DFFEs with enable = 1).  This is the α·Cclk term of Eq. 3/6.
	ffClockedCycles uint64
}

// Compile levelizes the netlist and returns a ready-to-run simulator with
// all flip-flops at their power-on values and all inputs at 0.  It fails
// with ErrCombLoop if the combinational gates form a cycle.
func (n *Netlist) Compile() (*Simulator, error) {
	ng := len(n.gates)
	s := &Simulator{
		n:        n,
		vals:     make([]bool, ng+2),
		prev:     make([]bool, ng+2),
		ffIndex:  make([]int32, ng),
		inputs:   make(map[Net]bool),
		toggles:  make([]uint64, ng+2),
		firstOne: make([]int32, ng+2),
	}
	s.vals[One] = true
	for i := range s.firstOne {
		s.firstOne[i] = -1
	}
	for i := range s.ffIndex {
		s.ffIndex[i] = -1
	}
	for i, g := range n.gates {
		if g.kind == KindDFF {
			s.ffIndex[i] = int32(len(s.ffGates))
			s.ffGates = append(s.ffGates, int32(i))
			s.ffState = append(s.ffState, g.init)
		}
	}

	// Topologically order the combinational gates.  DFF outputs, inputs
	// and constants are sources; an edge u→v exists when combinational
	// gate v reads the net driven by combinational gate u.
	indeg := make([]int32, ng)
	for i, g := range n.gates {
		if g.kind == KindDFF || g.kind == KindInput {
			continue
		}
		for _, in := range g.in {
			j := int(in) - 2
			if j < 0 {
				continue // constant
			}
			if gk := n.gates[j].kind; gk != KindDFF && gk != KindInput {
				indeg[i]++
			}
		}
	}
	frontier := make([]int32, 0, ng)
	for i, g := range n.gates {
		if g.kind == KindDFF || g.kind == KindInput {
			continue
		}
		if indeg[i] == 0 {
			frontier = append(frontier, int32(i))
		}
	}
	// fanout index for propagating the Kahn frontier without quadratic
	// rescans.
	fanout := make([][]int32, ng)
	for i, g := range n.gates {
		if g.kind == KindDFF || g.kind == KindInput {
			continue
		}
		for _, in := range g.in {
			j := int(in) - 2
			if j < 0 {
				continue
			}
			if gk := n.gates[j].kind; gk != KindDFF && gk != KindInput {
				fanout[j] = append(fanout[j], int32(i))
			}
		}
	}
	combCount := 0
	for _, g := range n.gates {
		if g.kind != KindDFF && g.kind != KindInput {
			combCount++
		}
	}
	s.order = make([]int32, 0, combCount)
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		s.order = append(s.order, u)
		for _, v := range fanout[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(s.order) != combCount {
		return nil, ErrCombLoop
	}
	s.settle()
	copy(s.prev, s.vals)
	s.recordArrivals()
	return s, nil
}

// Reset returns the simulator to the state Compile left it in — all
// flip-flops at their power-on values, all inputs at 0, cycle 0, toggle
// and arrival accounting cleared — without re-levelizing the netlist or
// reallocating any buffer.  It is what makes a fixed-shape array cheap to
// reuse across many races: Compile is O(gates) with fresh allocations,
// Reset only clears the existing ones.
func (s *Simulator) Reset() {
	for i := range s.vals {
		s.vals[i] = false
	}
	s.vals[One] = true
	for i := range s.firstOne {
		s.firstOne[i] = -1
	}
	for i := range s.toggles {
		s.toggles[i] = 0
	}
	for slot, gi := range s.ffGates {
		s.ffState[slot] = s.n.gates[gi].init
	}
	clear(s.inputs)
	s.cycle = 0
	s.ffClockedCycles = 0
	s.settle()
	copy(s.prev, s.vals)
	s.recordArrivals()
}

// MustCompile is Compile for circuits that are acyclic by construction.
func (n *Netlist) MustCompile() *Simulator {
	s, err := n.Compile()
	if err != nil {
		panic(err)
	}
	return s
}

// SetInput drives an external input pin.  The change takes effect
// immediately in the current cycle: Race Logic injects its steady "1"s at
// the start of a computation (cycle 0) and the score of an input node is
// by definition 0, so arrival times are counted from the cycle in which
// the input is raised.
func (s *Simulator) SetInput(net Net, v bool) {
	g, ok := s.n.driver(net)
	if !ok || g.kind != KindInput {
		panic(fmt.Sprintf("circuit: SetInput on non-input net %d", net))
	}
	if s.inputs[net] == v {
		return
	}
	s.inputs[net] = v
	s.settle()
	s.account()
}

// account updates toggle counts and first-arrival records after a settle.
func (s *Simulator) account() {
	for i := range s.vals {
		if s.vals[i] != s.prev[i] {
			s.toggles[i]++
		}
	}
	copy(s.prev, s.vals)
	s.recordArrivals()
}

// SetInputName drives an input pin by name.
func (s *Simulator) SetInputName(name string, v bool) error {
	net, err := s.n.InputNet(name)
	if err != nil {
		return err
	}
	s.SetInput(net, v)
	return nil
}

// settle evaluates the combinational logic from current inputs and
// flip-flop states.
func (s *Simulator) settle() {
	for net, v := range s.inputs {
		s.vals[net] = v
	}
	for i, slot := range s.ffIndex {
		if slot >= 0 {
			s.vals[i+2] = s.ffState[slot]
		}
	}
	gates := s.n.gates
	for _, gi := range s.order {
		g := &gates[gi]
		var v bool
		switch g.kind {
		case KindConst:
			continue
		case KindBuf:
			v = s.vals[g.in[0]]
		case KindNot:
			v = !s.vals[g.in[0]]
		case KindAnd:
			v = true
			for _, in := range g.in {
				if !s.vals[in] {
					v = false
					break
				}
			}
		case KindOr:
			v = false
			for _, in := range g.in {
				if s.vals[in] {
					v = true
					break
				}
			}
		case KindXor:
			v = s.vals[g.in[0]] != s.vals[g.in[1]]
		case KindXnor:
			v = s.vals[g.in[0]] == s.vals[g.in[1]]
		case KindMux2:
			if s.vals[g.in[0]] {
				v = s.vals[g.in[2]]
			} else {
				v = s.vals[g.in[1]]
			}
		default:
			panic(fmt.Sprintf("circuit: unexpected combinational kind %v", g.kind))
		}
		s.vals[int(gi)+2] = v
	}
}

func (s *Simulator) recordArrivals() {
	for i, v := range s.vals {
		if v && s.firstOne[i] == -1 {
			s.firstOne[i] = int32(s.cycle)
		}
	}
}

// Step advances the simulation by one clock cycle: the clock edge samples
// D on every enabled flip-flop from the currently settled values, then the
// combinational logic re-settles and toggle/arrival accounting runs.
func (s *Simulator) Step() {
	gates := s.n.gates
	for slot, gi := range s.ffGates {
		g := &gates[gi]
		enabled := true
		if len(g.in) == 2 {
			enabled = s.vals[g.in[1]]
		}
		if enabled {
			s.ffState[slot] = s.vals[g.in[0]]
			s.ffClockedCycles++
		}
	}
	s.cycle++
	s.settle()
	s.account()
}

// Run advances the simulation by k cycles.
func (s *Simulator) Run(k int) {
	for i := 0; i < k; i++ {
		s.Step()
	}
}

// RunUntil steps until the given net first carries a 1 and returns the
// arrival time, or temporal.Never if it has not arrived after maxCycles.
// The arrival time of a net already 1 in the settled state is whatever
// cycle it first went high (possibly the current one).
func (s *Simulator) RunUntil(net Net, maxCycles int) temporal.Time {
	for s.firstOne[net] == -1 && s.cycle < maxCycles {
		s.Step()
	}
	if s.firstOne[net] == -1 {
		return temporal.Never
	}
	return temporal.Time(s.firstOne[net])
}

// Cycle returns the number of Steps taken so far.
func (s *Simulator) Cycle() int { return s.cycle }

// Value returns the current settled value of a net.
func (s *Simulator) Value(net Net) bool { return s.vals[net] }

// Arrival returns the cycle at which the net first carried a 1, or
// temporal.Never if it has not yet.
func (s *Simulator) Arrival(net Net) temporal.Time {
	if s.firstOne[net] == -1 {
		return temporal.Never
	}
	return temporal.Time(s.firstOne[net])
}

// Toggles returns the cumulative toggle count of a net.
func (s *Simulator) Toggles(net Net) uint64 { return s.toggles[net] }
