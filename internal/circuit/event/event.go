// Package event is the event-driven simulation backend for compiled
// Race Logic netlists — the fast path behind circuit.Backend.
//
// The cycle-accurate circuit.Simulator evaluates every combinational
// gate and scans every net once per clock cycle, which prices a race at
// cycles × gates even though Race Logic is pure delay propagation: after
// the rising wavefront passes a cell, its nets never move again.  This
// engine instead keeps a two-tier event wheel over the compiled netlist:
//
//   - within a cycle, a level-bucketed settle wave re-evaluates only the
//     combinational gates whose inputs actually changed, in levelized
//     order (each gate at most once per settle, exactly like the
//     reference simulator's single topological pass);
//   - across cycles, an "armed" set tracks the flip-flops whose next
//     clock edge will change state (enabled, D ≠ Q).  A Step touches
//     only armed flip-flops and the wave they trigger; when the set is
//     empty the circuit is quiescent and Run/RunUntil advance straight
//     to the horizon, accumulating only clock accounting.
//
// All delays in the synchronous design are single flip-flops, so the
// wheel needs exactly two buckets — "this settle" and "next edge" — and
// the cost of a race collapses from cycles × gates to the number of net
// transitions, which for an edit-graph array is the size of the
// wavefront, not the grid.
//
// The engine is exact, not approximate: per-net first-arrival times,
// cumulative toggle counts, and the clocked-flip-flop total are computed
// by the same rules as the reference simulator, so scores, timing
// matrices, and energy reports are byte-identical.  The differential
// suite in internal/oracle holds the two backends to that contract over
// randomized netlists and stimulus; keep it green when touching this
// file.
package event

import (
	"fmt"

	"racelogic/internal/circuit"
	"racelogic/internal/temporal"
)

// Sim is the event-driven backend.  Like the reference simulator it is
// not safe for concurrent use; compile one per goroutine (the pipeline's
// engine pools do exactly that).
type Sim struct {
	nl *circuit.Netlist

	// Static structure, gathered once at Compile.
	kinds []circuit.Kind
	ins   [][]circuit.Net
	level []int32 // comb gate → settle level; -1 for inputs and DFFs

	comb [][]int32 // net → comb gates reading it
	dOf  [][]int32 // net → FF slots whose D pin is this net
	eOf  [][]int32 // net → DFFE slots whose enable pin is this net

	ffGate []int32       // slot → gate index
	ffEn   []circuit.Net // slot → enable net, or -1 for a plain DFF
	ffInit []bool
	plain  uint64 // flip-flops clocked every cycle (no enable pin)

	// chainFree marks flip-flops whose D and enable pins are not driven
	// directly by another flip-flop's Q.  For them the clock edge cannot
	// move their inputs, so a post-flip re-arm is provably a disarm and
	// Step skips the recompute.  In the edit-graph arrays this is every
	// interior cell — only the border cells, where a one-input OR
	// collapses to a Q→D wire, sit on chains.
	chainFree []bool

	// Dynamic state.
	vals            []bool
	ffState         []bool
	toggles         []uint64
	firstOne        []int32
	inputs          map[circuit.Net]bool
	cycle           int
	ffClockedCycles uint64
	enabledE        uint64 // DFFEs whose enable net currently carries 1

	// The armed set: flip-flops the next clock edge will change
	// (enabled and D ≠ Q), maintained incrementally as nets move.
	armed     []bool
	armedAt   []int32
	armedList []int32
	scratch   []int32 // edge-time snapshot of armedList

	// The settle wave: pending comb gates bucketed by level.
	buckets [][]int32
	queued  []bool
	pending int

	// Power-on settled baseline, so Reset is a copy instead of a
	// re-settle.
	baseVals     []bool
	baseArmed    []int32
	baseEnabledE uint64
}

// Compile levelizes the netlist and returns a ready-to-run event engine
// with all flip-flops at their power-on values and all inputs at 0.  It
// fails with circuit.ErrCombLoop if the combinational gates form a
// cycle, exactly like the reference Compile.
func Compile(nl *circuit.Netlist) (*Sim, error) {
	ng := nl.NumGates()
	nn := nl.NumNets()
	s := &Sim{
		nl:       nl,
		kinds:    make([]circuit.Kind, ng),
		ins:      make([][]circuit.Net, ng),
		level:    make([]int32, ng),
		comb:     make([][]int32, nn),
		dOf:      make([][]int32, nn),
		eOf:      make([][]int32, nn),
		vals:     make([]bool, nn),
		toggles:  make([]uint64, nn),
		firstOne: make([]int32, nn),
		inputs:   make(map[circuit.Net]bool),
		queued:   make([]bool, ng),
	}
	isComb := func(k circuit.Kind) bool { return k != circuit.KindDFF && k != circuit.KindInput }
	for i := 0; i < ng; i++ {
		g := nl.Gate(i)
		s.kinds[i] = g.Kind
		s.ins[i] = g.In
		s.level[i] = -1
		if g.Kind == circuit.KindDFF {
			slot := len(s.ffGate)
			s.ffGate = append(s.ffGate, int32(i))
			s.ffInit = append(s.ffInit, g.Init)
			s.dOf[g.In[0]] = append(s.dOf[g.In[0]], int32(slot))
			if len(g.In) == 2 {
				s.ffEn = append(s.ffEn, g.In[1])
				s.eOf[g.In[1]] = append(s.eOf[g.In[1]], int32(slot))
			} else {
				s.ffEn = append(s.ffEn, -1)
				s.plain++
			}
		}
	}
	s.ffState = append([]bool(nil), s.ffInit...)
	isFFNet := func(net circuit.Net) bool {
		j := int(net) - 2
		return j >= 0 && s.kinds[j] == circuit.KindDFF
	}
	s.chainFree = make([]bool, len(s.ffGate))
	for slot, gi := range s.ffGate {
		free := !isFFNet(s.ins[gi][0])
		if en := s.ffEn[slot]; en >= 0 && isFFNet(en) {
			free = false
		}
		s.chainFree[slot] = free
	}

	// Levelize the combinational gates (Kahn over comb→comb edges,
	// longest-path levels) and index each net's comb fan-out.
	indeg := make([]int32, ng)
	combCount := 0
	for i := 0; i < ng; i++ {
		if !isComb(s.kinds[i]) {
			continue
		}
		combCount++
		for _, in := range s.ins[i] {
			s.comb[in] = append(s.comb[in], int32(i))
			if j := int(in) - 2; j >= 0 && isComb(s.kinds[j]) {
				indeg[i]++
			}
		}
	}
	frontier := make([]int32, 0, combCount)
	for i := 0; i < ng; i++ {
		if isComb(s.kinds[i]) && indeg[i] == 0 {
			s.level[i] = 0
			frontier = append(frontier, int32(i))
		}
	}
	processed := 0
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		processed++
		for _, v := range s.comb[int(u)+2] {
			if s.level[u]+1 > s.level[v] {
				s.level[v] = s.level[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if processed != combCount {
		return nil, circuit.ErrCombLoop
	}
	maxLvl := int32(0)
	for i := 0; i < ng; i++ {
		if s.level[i] > maxLvl {
			maxLvl = s.level[i]
		}
	}
	s.buckets = make([][]int32, maxLvl+1)

	// Power-on settle: one full pass in level order, then latch the
	// settled state as the Reset baseline.  Like the reference Compile,
	// the initial settle records arrivals but counts no toggles.
	s.vals[circuit.One] = true
	for slot, gi := range s.ffGate {
		s.vals[int(gi)+2] = s.ffInit[slot]
	}
	order := make([]int32, 0, combCount)
	for i := 0; i < ng; i++ {
		if isComb(s.kinds[i]) {
			order = append(order, int32(i))
		}
	}
	// Counting sort by level keeps the full pass linear.
	byLevel := make([][]int32, maxLvl+1)
	for _, gi := range order {
		byLevel[s.level[gi]] = append(byLevel[s.level[gi]], gi)
	}
	for _, bucket := range byLevel {
		for _, gi := range bucket {
			s.vals[int(gi)+2] = s.eval(gi)
		}
	}
	for i, v := range s.vals {
		if v {
			s.firstOne[i] = 0
		} else {
			s.firstOne[i] = -1
		}
	}
	for _, en := range s.ffEn {
		if en >= 0 && s.vals[en] {
			s.enabledE++
		}
	}
	s.armed = make([]bool, len(s.ffGate))
	s.armedAt = make([]int32, len(s.ffGate))
	for slot := range s.ffGate {
		s.rearm(int32(slot))
	}

	s.baseVals = append([]bool(nil), s.vals...)
	s.baseArmed = append([]int32(nil), s.armedList...)
	s.baseEnabledE = s.enabledE
	return s, nil
}

// maxLevel returns the highest settle level (buckets are sized past it).
func (s *Sim) maxLevel() int { return len(s.buckets) - 1 }

// Reset returns the engine to its power-on settled state without
// re-levelizing: the baseline captured at Compile is copied back and the
// accounting cleared.
func (s *Sim) Reset() {
	copy(s.vals, s.baseVals)
	for i, v := range s.baseVals {
		if v {
			s.firstOne[i] = 0
		} else {
			s.firstOne[i] = -1
		}
	}
	for i := range s.toggles {
		s.toggles[i] = 0
	}
	for slot := range s.ffState {
		s.ffState[slot] = s.ffInit[slot]
	}
	clear(s.inputs)
	s.cycle = 0
	s.ffClockedCycles = 0
	s.enabledE = s.baseEnabledE
	for _, slot := range s.armedList {
		s.armed[slot] = false
	}
	s.armedList = s.armedList[:0]
	for _, slot := range s.baseArmed {
		s.armed[slot] = true
		s.armedAt[slot] = int32(len(s.armedList))
		s.armedList = append(s.armedList, slot)
	}
}

// eval computes a combinational gate's output from current net values.
func (s *Sim) eval(gi int32) bool {
	in := s.ins[gi]
	switch s.kinds[gi] {
	case circuit.KindBuf:
		return s.vals[in[0]]
	case circuit.KindNot:
		return !s.vals[in[0]]
	case circuit.KindAnd:
		for _, x := range in {
			if !s.vals[x] {
				return false
			}
		}
		return true
	case circuit.KindOr:
		for _, x := range in {
			if s.vals[x] {
				return true
			}
		}
		return false
	case circuit.KindXor:
		return s.vals[in[0]] != s.vals[in[1]]
	case circuit.KindXnor:
		return s.vals[in[0]] == s.vals[in[1]]
	case circuit.KindMux2:
		if s.vals[in[0]] {
			return s.vals[in[2]]
		}
		return s.vals[in[1]]
	default:
		panic(fmt.Sprintf("event: unexpected combinational kind %v", s.kinds[gi]))
	}
}

// rearm recomputes one flip-flop's membership in the armed set from the
// current net values and its current state.
func (s *Sim) rearm(slot int32) {
	d := s.ins[s.ffGate[slot]][0]
	en := s.ffEn[slot]
	want := (en < 0 || s.vals[en]) && s.vals[d] != s.ffState[slot]
	if want == s.armed[slot] {
		return
	}
	if want {
		s.armed[slot] = true
		s.armedAt[slot] = int32(len(s.armedList))
		s.armedList = append(s.armedList, slot)
		return
	}
	s.armed[slot] = false
	i := s.armedAt[slot]
	last := s.armedList[len(s.armedList)-1]
	s.armedList[i] = last
	s.armedAt[last] = i
	s.armedList = s.armedList[:len(s.armedList)-1]
}

// setNet commits a changed net value: accounting first, then the comb
// fan-out is enqueued on the wave and flip-flops listening on the net
// (as D or enable) are re-armed.
func (s *Sim) setNet(net circuit.Net, v bool) {
	s.vals[net] = v
	s.toggles[net]++
	if v && s.firstOne[net] == -1 {
		s.firstOne[net] = int32(s.cycle)
	}
	for _, gi := range s.comb[net] {
		if !s.queued[gi] {
			s.queued[gi] = true
			s.buckets[s.level[gi]] = append(s.buckets[s.level[gi]], gi)
			s.pending++
		}
	}
	for _, slot := range s.dOf[net] {
		s.rearm(slot)
	}
	for _, slot := range s.eOf[net] {
		if v {
			s.enabledE++
		} else {
			s.enabledE--
		}
		s.rearm(slot)
	}
}

// settleWave drains the pending comb gates in level order.  A gate only
// ever enqueues gates at strictly higher levels, so each gate is
// evaluated at most once per wave — the event-driven equivalent of the
// reference simulator's single topological pass, with identical
// glitch-free toggle accounting.
func (s *Sim) settleWave() {
	for lvl := 0; s.pending > 0 && lvl < len(s.buckets); lvl++ {
		b := s.buckets[lvl]
		if len(b) == 0 {
			continue
		}
		s.buckets[lvl] = b[:0]
		for _, gi := range b {
			s.queued[gi] = false
			s.pending--
			out := circuit.Net(int(gi) + 2)
			if v := s.eval(gi); v != s.vals[out] {
				s.setNet(out, v)
			}
		}
	}
}

// SetInput drives an external input pin; the change settles immediately
// in the current cycle.
func (s *Sim) SetInput(net circuit.Net, v bool) {
	gi := int(net) - 2
	if gi < 0 || gi >= len(s.kinds) || s.kinds[gi] != circuit.KindInput {
		panic(fmt.Sprintf("event: SetInput on non-input net %d", net))
	}
	if s.inputs[net] == v {
		return
	}
	s.inputs[net] = v
	if s.vals[net] != v {
		s.setNet(net, v)
		s.settleWave()
	}
}

// SetInputName drives an input pin by name.
func (s *Sim) SetInputName(name string, v bool) error {
	net, err := s.nl.InputNet(name)
	if err != nil {
		return err
	}
	s.SetInput(net, v)
	return nil
}

// Step advances one clock cycle: the edge samples D on every armed
// flip-flop (pre-edge values — the snapshot makes the sampling
// synchronous even along direct Q→D chains), then the triggered wave
// settles.  Clock accounting covers every enabled flip-flop, armed or
// not, exactly like the reference.
func (s *Sim) Step() {
	s.ffClockedCycles += s.plain + s.enabledE
	s.cycle++
	if len(s.armedList) == 0 {
		return
	}
	// Swap the edge set out instead of copying it and batch-clear the
	// armed flags: every edge flip empties a slot's membership unless a
	// chain can re-fill it, so only chain slots pay the per-slot re-arm
	// recompute below (setNet's D/enable listeners handle every other
	// re-arming as the flips and the wave land).
	s.scratch, s.armedList = s.armedList, s.scratch[:0]
	for _, slot := range s.scratch {
		s.armed[slot] = false
	}
	for _, slot := range s.scratch {
		// Armed means Q will flip to ¬Q: the pre-edge D differs from Q,
		// and D nets cannot move between edges (waves settle fully).
		v := !s.ffState[slot]
		s.ffState[slot] = v
		if !s.chainFree[slot] {
			s.rearm(slot)
		}
		s.setNet(circuit.Net(int(s.ffGate[slot])+2), v)
	}
	s.settleWave()
}

// Run advances k cycles, fast-forwarding through quiescence: with no
// armed flip-flop nothing can change until an input does, so the
// remaining cycles collapse into clock accounting.
func (s *Sim) Run(k int) {
	for i := 0; i < k; i++ {
		if len(s.armedList) == 0 {
			s.ffClockedCycles += uint64(k-i) * (s.plain + s.enabledE)
			s.cycle += k - i
			return
		}
		s.Step()
	}
}

// RunUntil steps until net first carries a 1 and returns the arrival
// time, or temporal.Never if it has not arrived after maxCycles.  A
// quiescent circuit advances straight to the horizon.
func (s *Sim) RunUntil(net circuit.Net, maxCycles int) temporal.Time {
	for s.firstOne[net] == -1 && s.cycle < maxCycles {
		if len(s.armedList) == 0 {
			s.ffClockedCycles += uint64(maxCycles-s.cycle) * (s.plain + s.enabledE)
			s.cycle = maxCycles
			break
		}
		s.Step()
	}
	if s.firstOne[net] == -1 {
		return temporal.Never
	}
	return temporal.Time(s.firstOne[net])
}

// Cycle returns the number of Steps taken so far (fast-forwarded
// quiescent cycles included).
func (s *Sim) Cycle() int { return s.cycle }

// Value returns the current settled value of a net.
func (s *Sim) Value(net circuit.Net) bool { return s.vals[net] }

// Arrival returns the cycle at which the net first carried a 1, or
// temporal.Never.
func (s *Sim) Arrival(net circuit.Net) temporal.Time {
	if s.firstOne[net] == -1 {
		return temporal.Never
	}
	return temporal.Time(s.firstOne[net])
}

// Toggles returns the cumulative toggle count of a net.
func (s *Sim) Toggles(net circuit.Net) uint64 { return s.toggles[net] }

// Activity summarizes the simulation so far, by the same rules as the
// reference simulator.
func (s *Sim) Activity() circuit.Activity {
	a := circuit.Activity{
		Cycles:          s.cycle,
		GateCount:       s.nl.CountByKind(),
		FanInCount:      s.nl.FanIn(),
		NetToggles:      make(map[circuit.Kind]uint64),
		LoadToggles:     make(map[circuit.Kind]uint64),
		FFClockedCycles: s.ffClockedCycles,
		NumDFFs:         s.nl.NumDFFs(),
	}
	for i, kind := range s.kinds {
		for _, in := range s.ins[i] {
			if t := s.toggles[in]; t != 0 {
				a.LoadToggles[kind] += t
			}
		}
		if t := s.toggles[i+2]; t != 0 {
			a.NetToggles[kind] += t
		}
	}
	return a
}

// The event engine satisfies the shared backend contract.
var _ circuit.Backend = (*Sim)(nil)
