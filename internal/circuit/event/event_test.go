package event_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"racelogic/internal/circuit"
	"racelogic/internal/circuit/event"
)

// pair runs the reference cycle-accurate simulator and the event engine
// in lockstep over the same netlist and asserts observable equality
// after every mutation.
type pair struct {
	t   *testing.T
	nl  *circuit.Netlist
	ref *circuit.Simulator
	ev  *event.Sim
}

func newPair(t *testing.T, nl *circuit.Netlist) *pair {
	t.Helper()
	ref, err := nl.Compile()
	if err != nil {
		t.Fatalf("reference Compile: %v", err)
	}
	ev, err := event.Compile(nl)
	if err != nil {
		t.Fatalf("event Compile: %v", err)
	}
	p := &pair{t: t, nl: nl, ref: ref, ev: ev}
	p.check("after compile")
	return p
}

func (p *pair) check(when string) {
	p.t.Helper()
	if rc, ec := p.ref.Cycle(), p.ev.Cycle(); rc != ec {
		p.t.Fatalf("%s: cycle mismatch: ref=%d event=%d", when, rc, ec)
	}
	for i := 0; i < p.nl.NumNets(); i++ {
		net := circuit.Net(i)
		if rv, ev := p.ref.Value(net), p.ev.Value(net); rv != ev {
			p.t.Fatalf("%s: net %d value mismatch: ref=%v event=%v", when, i, rv, ev)
		}
		if ra, ea := p.ref.Arrival(net), p.ev.Arrival(net); ra != ea {
			p.t.Fatalf("%s: net %d arrival mismatch: ref=%v event=%v", when, i, ra, ea)
		}
		if rt, et := p.ref.Toggles(net), p.ev.Toggles(net); rt != et {
			p.t.Fatalf("%s: net %d toggles mismatch: ref=%d event=%d", when, i, rt, et)
		}
	}
	ra, ea := p.ref.Activity(), p.ev.Activity()
	if !reflect.DeepEqual(ra, ea) {
		p.t.Fatalf("%s: activity mismatch:\nref:   %+v\nevent: %+v", when, ra, ea)
	}
}

func (p *pair) set(net circuit.Net, v bool) {
	p.t.Helper()
	p.ref.SetInput(net, v)
	p.ev.SetInput(net, v)
	p.check("after SetInput")
}

func (p *pair) step() {
	p.t.Helper()
	p.ref.Step()
	p.ev.Step()
	p.check("after Step")
}

func (p *pair) run(k int) {
	p.t.Helper()
	p.ref.Run(k)
	p.ev.Run(k)
	p.check("after Run")
}

func (p *pair) reset() {
	p.t.Helper()
	p.ref.Reset()
	p.ev.Reset()
	p.check("after Reset")
}

func TestDelayChainLockstep(t *testing.T) {
	nl := circuit.New()
	in := nl.Input("a")
	out := nl.DelayChain(in, 5)
	p := newPair(t, nl)

	p.set(in, true)
	for i := 0; i < 8; i++ {
		p.step()
	}
	if got := p.ev.Arrival(out); got != 5 {
		t.Errorf("delayed arrival = %v, want 5", got)
	}
	// A second race after Reset must be identical.
	p.reset()
	p.set(in, true)
	p.run(8)
	if got := p.ev.Arrival(out); got != 5 {
		t.Errorf("after reset: delayed arrival = %v, want 5", got)
	}
}

func TestRunUntilQuiescentFastForward(t *testing.T) {
	nl := circuit.New()
	in := nl.Input("a")
	out := nl.DelayChain(in, 3)
	p := newPair(t, nl)

	// Quiescent circuit (input still 0): both backends must advance the
	// clock accounting to the horizon and report Never.
	rt := p.ref.RunUntil(out, 20)
	et := p.ev.RunUntil(out, 20)
	if rt != et {
		t.Fatalf("RunUntil mismatch: ref=%v event=%v", rt, et)
	}
	p.check("after quiescent RunUntil")

	p.reset()
	p.set(in, true)
	rt = p.ref.RunUntil(out, 20)
	et = p.ev.RunUntil(out, 20)
	if rt != et || et != 3 {
		t.Fatalf("RunUntil = ref %v, event %v; want 3", rt, et)
	}
	p.check("after racing RunUntil")
}

func TestStickyLatchLockstep(t *testing.T) {
	nl := circuit.New()
	in := nl.Input("pulse")
	latched, immediate := nl.StickyLatch(in)
	p := newPair(t, nl)

	p.set(in, true)
	p.step()
	p.set(in, false) // pulse ends; the latch must hold
	for i := 0; i < 4; i++ {
		p.step()
	}
	if !p.ev.Value(latched) || !p.ev.Value(immediate) {
		t.Error("sticky latch did not hold after the pulse")
	}
}

func TestSatCounterLockstep(t *testing.T) {
	nl := circuit.New()
	en := nl.Input("en")
	bus := nl.SatCounter(3, en)
	p := newPair(t, nl)

	p.set(en, true)
	for i := 0; i < 10; i++ { // runs past saturation at 7
		p.step()
	}
	for _, b := range bus {
		if !p.ev.Value(b) {
			t.Fatal("counter did not saturate at all-ones")
		}
	}
	// Disable and keep clocking: counter bits hold, toggles stay equal.
	p.set(en, false)
	p.run(3)
}

func TestGatedDFFELockstep(t *testing.T) {
	nl := circuit.New()
	d := nl.Input("d")
	en := nl.Input("en")
	q := nl.DFFE(d, en)
	p := newPair(t, nl)

	p.set(d, true)
	p.step() // enable low: no sample, but ffClockedCycles differ per backend if wrong
	if p.ev.Value(q) {
		t.Error("gated FF sampled while disabled")
	}
	p.set(en, true)
	p.step()
	if !p.ev.Value(q) {
		t.Error("gated FF did not sample once enabled")
	}
	p.set(en, false)
	p.set(d, false)
	p.run(3)
	if !p.ev.Value(q) {
		t.Error("gated FF lost state while disabled")
	}
}

func TestPatchedEnableAndDFFInit(t *testing.T) {
	nl := circuit.New()
	d := nl.Input("d")
	q := nl.DFFE(d, circuit.One)
	// The enable ends up driven by a sticky latch built after the FF —
	// the construction order gated fabrics rely on.
	trig := nl.Input("trig")
	_, imm := nl.StickyLatch(trig)
	gateOff := nl.Not(imm)
	if err := nl.PatchEnable(q, gateOff); err != nil {
		t.Fatal(err)
	}
	one := nl.DFFInit(circuit.Zero, true) // init-1 FF decays to 0 after one edge
	p := newPair(t, nl)

	if !p.ev.Value(one) {
		t.Error("init-1 FF not 1 at power-on")
	}
	p.set(d, true)
	p.step()
	if !p.ev.Value(q) {
		t.Error("FF did not sample while ungated")
	}
	p.set(trig, true) // latch sets, enable drops this settle
	p.set(d, false)
	p.run(4)
	if !p.ev.Value(q) {
		t.Error("FF changed state after its clock was gated off")
	}
}

func TestMuxTreeLockstep(t *testing.T) {
	nl := circuit.New()
	s0, s1 := nl.Input("s0"), nl.Input("s1")
	a, b, c, d := nl.Input("a"), nl.Input("b"), nl.Input("c"), nl.Input("d")
	out := nl.MuxN([]circuit.Net{s0, s1}, []circuit.Net{a, b, c, d})
	p := newPair(t, nl)

	ins := []circuit.Net{a, b, c, d}
	for sel := 0; sel < 4; sel++ {
		p.set(s0, sel&1 == 1)
		p.set(s1, sel&2 == 2)
		for i, in := range ins {
			p.set(in, true)
			if got := p.ev.Value(out); got != (i == sel) {
				t.Errorf("sel=%d in=%d: out=%v", sel, i, got)
			}
			p.set(in, false)
		}
	}
}

func TestCombLoopRejected(t *testing.T) {
	nl := circuit.New()
	in := nl.Input("a")
	x := nl.Or(in, circuit.Zero) // placeholder second input, patched into a loop
	y := nl.And(x, circuit.One)
	// Rewire the OR to read the AND: a pure combinational cycle.
	g := nl.Gate(int(x) - 2)
	g.In[1] = y
	if _, err := event.Compile(nl); !errors.Is(err, circuit.ErrCombLoop) {
		t.Fatalf("event Compile error = %v, want ErrCombLoop", err)
	}
	if _, err := nl.Compile(); !errors.Is(err, circuit.ErrCombLoop) {
		t.Fatalf("reference Compile error = %v, want ErrCombLoop", err)
	}
}

// TestRandomSequentialLockstep drives a randomly wired (acyclic by
// construction) netlist with random stimulus — a miniature of the
// internal/oracle property suite that runs in every short test pass.
func TestRandomSequentialLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nl := circuit.New()
		var pool []circuit.Net
		inputs := make([]circuit.Net, 3)
		for i := range inputs {
			inputs[i] = nl.Input(string(rune('a' + i)))
			pool = append(pool, inputs[i])
		}
		pool = append(pool, circuit.Zero, circuit.One)
		pick := func() circuit.Net { return pool[rng.Intn(len(pool))] }
		for g := 0; g < 40; g++ {
			var n circuit.Net
			switch rng.Intn(8) {
			case 0:
				n = nl.Not(pick())
			case 1:
				n = nl.And(pick(), pick())
			case 2:
				n = nl.Or(pick(), pick(), pick())
			case 3:
				n = nl.Xor(pick(), pick())
			case 4:
				n = nl.Xnor(pick(), pick())
			case 5:
				n = nl.Mux2(pick(), pick(), pick())
			case 6:
				n = nl.DFF(pick())
			default:
				n = nl.DFFE(pick(), pick())
			}
			pool = append(pool, n)
		}
		p := newPair(t, nl)
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0:
				p.set(inputs[rng.Intn(len(inputs))], rng.Intn(2) == 1)
			case 1:
				p.step()
			default:
				p.run(rng.Intn(5))
			}
		}
		p.reset()
		p.set(inputs[0], true)
		p.run(10)
	}
}
