package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"racelogic/internal/temporal"
)

// randomComb builds a random combinational netlist over k inputs and
// returns, alongside the output net, a pure-Go evaluator of the same
// expression — an independent oracle for the simulator's settle logic.
func randomComb(rng *rand.Rand, n *Netlist, ins []Net, depth int) (Net, func([]bool) bool) {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return Zero, func([]bool) bool { return false }
		case 1:
			return One, func([]bool) bool { return true }
		default:
			i := rng.Intn(len(ins))
			return ins[i], func(v []bool) bool { return v[i] }
		}
	}
	a, fa := randomComb(rng, n, ins, depth-1)
	b, fb := randomComb(rng, n, ins, depth-1)
	switch rng.Intn(6) {
	case 0:
		return n.And(a, b), func(v []bool) bool { return fa(v) && fb(v) }
	case 1:
		return n.Or(a, b), func(v []bool) bool { return fa(v) || fb(v) }
	case 2:
		return n.Xor(a, b), func(v []bool) bool { return fa(v) != fb(v) }
	case 3:
		return n.Xnor(a, b), func(v []bool) bool { return fa(v) == fb(v) }
	case 4:
		return n.Not(a), func(v []bool) bool { return !fa(v) }
	default:
		c, fc := randomComb(rng, n, ins, depth-1)
		return n.Mux2(a, b, c), func(v []bool) bool {
			if fa(v) {
				return fc(v)
			}
			return fb(v)
		}
	}
}

func TestPropertyRandomCombCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	const numInputs = 5
	for trial := 0; trial < 40; trial++ {
		n := New()
		ins := make([]Net, numInputs)
		for i := range ins {
			ins[i] = n.Input(string(rune('a' + i)))
		}
		out, oracle := randomComb(rng, n, ins, 5)
		sim, err := n.Compile()
		if err != nil {
			t.Fatal(err)
		}
		// Exhaust all 32 input assignments.
		for mask := 0; mask < 1<<numInputs; mask++ {
			v := make([]bool, numInputs)
			for i := range v {
				v[i] = mask>>uint(i)&1 == 1
				sim.SetInput(ins[i], v[i])
			}
			sim.Step()
			if got, want := sim.Value(out), oracle(v); got != want {
				t.Fatalf("trial %d mask %05b: sim %v != oracle %v", trial, mask, got, want)
			}
		}
	}
}

func TestPropertyDelayChainAdds(t *testing.T) {
	// arrival(DelayChain(a, k)) == arrival(a) + k, for arbitrary k and
	// injection cycles — the "+ constant" law of Race Logic.
	prop := func(kRaw, startRaw uint8) bool {
		k := int(kRaw % 40)
		start := int(startRaw % 10)
		n := New()
		a := n.Input("a")
		d := n.DelayChain(a, k)
		sim := n.MustCompile()
		sim.Run(start)
		sim.SetInput(a, true)
		got := sim.RunUntil(d, start+k+5)
		return got == temporal.Time(start+k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertySatCounterTracksEnabledCycles(t *testing.T) {
	// After e enabled cycles (e ≤ saturation) the counter reads e.
	prop := func(widthRaw, enRaw uint8) bool {
		width := 1 + int(widthRaw%5)
		maxCount := 1<<uint(width) - 1
		enabled := int(enRaw) % (maxCount + 4)
		n := New()
		en := n.Input("en")
		bus := n.SatCounter(width, en)
		sim := n.MustCompile()
		sim.SetInput(en, true)
		sim.Run(enabled)
		got := 0
		for i, b := range bus {
			if sim.Value(b) {
				got |= 1 << uint(i)
			}
		}
		want := enabled
		if want > maxCount {
			want = maxCount
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOrMonotoneArrivals(t *testing.T) {
	// Fundamental Race Logic law: an OR gate's arrival time equals the
	// min of its inputs' arrival times, whatever delays feed it.
	prop := func(d1Raw, d2Raw, d3Raw uint8) bool {
		d1, d2, d3 := int(d1Raw%20), int(d2Raw%20), int(d3Raw%20)
		n := New()
		a := n.Input("a")
		or := n.Or(n.DelayChain(a, d1), n.DelayChain(a, d2), n.DelayChain(a, d3))
		and := n.And(n.DelayChain(a, d1), n.DelayChain(a, d2), n.DelayChain(a, d3))
		sim := n.MustCompile()
		sim.SetInput(a, true)
		bound := 70
		gotOr := sim.RunUntil(or, bound)
		gotAnd := sim.RunUntil(and, bound)
		min := temporal.MinOf(temporal.Time(d1), temporal.Time(d2), temporal.Time(d3))
		max := temporal.MaxOf(temporal.Time(d1), temporal.Time(d2), temporal.Time(d3))
		return gotOr == min && gotAnd == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
