package circuit

import (
	"reflect"
	"testing"
)

// buildResetFixture is a small sequential circuit with every reusable
// state class: inputs, combinational gates, plain DFFs, an init-1 DFF
// and an enabled DFF.
func buildResetFixture() (*Netlist, Net, Net) {
	n := New()
	a := n.Input("a")
	b := n.Input("b")
	en := n.Input("en")
	x := n.Or(a, n.DFF(n.And(a, b)))
	y := n.And(x, n.DFFE(b, en), n.Not(n.DFFInit(a, true)))
	return n, a, y
}

// TestResetMatchesFreshCompile drives a simulator through a run, resets
// it, repeats the identical stimulus, and demands the same values,
// arrivals, cycle count and activity report a freshly compiled simulator
// produces.
func TestResetMatchesFreshCompile(t *testing.T) {
	n, a, y := buildResetFixture()

	drive := func(s *Simulator) {
		s.SetInput(a, true)
		s.SetInputName("b", true)
		s.SetInputName("en", true)
		s.Run(3)
		s.SetInput(a, false)
		s.Run(2)
	}

	fresh := n.MustCompile()
	drive(fresh)

	reused := n.MustCompile()
	// Dirty the simulator with a different stimulus first.
	reused.SetInputName("b", true)
	reused.Run(5)
	reused.Reset()
	drive(reused)

	if fresh.Cycle() != reused.Cycle() {
		t.Errorf("cycle: fresh %d, reused %d", fresh.Cycle(), reused.Cycle())
	}
	if fresh.Value(y) != reused.Value(y) {
		t.Errorf("value(y): fresh %v, reused %v", fresh.Value(y), reused.Value(y))
	}
	for net := Net(0); int(net) < n.NumNets(); net++ {
		if fresh.Arrival(net) != reused.Arrival(net) {
			t.Errorf("arrival(net %d): fresh %v, reused %v", net, fresh.Arrival(net), reused.Arrival(net))
		}
		if fresh.Toggles(net) != reused.Toggles(net) {
			t.Errorf("toggles(net %d): fresh %d, reused %d", net, fresh.Toggles(net), reused.Toggles(net))
		}
	}
	if fa, ra := fresh.Activity(), reused.Activity(); !reflect.DeepEqual(fa, ra) {
		t.Errorf("activity:\n fresh %+v\nreused %+v", fa, ra)
	}
}

// TestResetRestoresPowerOnState pins the immediate post-Reset state:
// inputs low, DFFs back at their init values, accounting cleared.
func TestResetRestoresPowerOnState(t *testing.T) {
	n, a, _ := buildResetFixture()
	s := n.MustCompile()
	s.SetInput(a, true)
	s.Run(4)
	s.Reset()

	if s.Cycle() != 0 {
		t.Errorf("cycle after Reset = %d, want 0", s.Cycle())
	}
	if s.Value(a) {
		t.Error("input a still high after Reset")
	}
	act := s.Activity()
	if act.FFClockedCycles != 0 {
		t.Errorf("FFClockedCycles after Reset = %d, want 0", act.FFClockedCycles)
	}
	for _, toggles := range act.NetToggles {
		if toggles != 0 {
			t.Errorf("net toggles after Reset = %v, want all zero", act.NetToggles)
			break
		}
	}
}
