package circuit

import "fmt"

// This file contains the composite structures ("macros") the paper's
// architectures are assembled from.  Each macro expands into primitive
// cells so the area/energy accounting sees exactly the hardware the paper
// describes: delay chains are literal DFF shift chains (Section 3),
// saturating up-counters and equality decoders implement the generalized
// cell of Section 5, and the set-on-arrival latch is the dotted box of
// Figure 8.

// DelayChain returns a net equal to a delayed by k clock cycles: a shift
// chain of k flip-flops.  k = 0 returns a unchanged.  This is the paper's
// realization of "+k" on an edge weight.
func (n *Netlist) DelayChain(a Net, k int) Net {
	if k < 0 {
		panic(fmt.Sprintf("circuit: DelayChain with negative length %d", k))
	}
	for i := 0; i < k; i++ {
		a = n.DFF(a)
	}
	return a
}

// DelayChainE is DelayChain built from clock-enabled flip-flops sharing
// one enable net, used inside clock-gated multi-cell regions.
func (n *Netlist) DelayChainE(a Net, k int, enable Net) Net {
	if k < 0 {
		panic(fmt.Sprintf("circuit: DelayChainE with negative length %d", k))
	}
	for i := 0; i < k; i++ {
		a = n.DFFE(a, enable)
	}
	return a
}

// StickyLatch returns a net that goes to 1 on the first cycle trigger is 1
// and stays 1 forever after (until the whole circuit is reset by starting
// a new simulation).  Structurally it is a DFF whose D input is
// OR(Q, trigger) — the "set on arrival" circuit of Figure 8, which turns
// counter-decoder pulses into the steady Boolean "1"s Race Logic requires.
//
// Note the returned net switches one cycle after trigger: callers that
// need the combinational (same-cycle) view should OR the trigger with the
// latch output, which is exactly what the returned second value provides.
func (n *Netlist) StickyLatch(trigger Net) (latched, immediate Net) {
	// The feedback goes through the flip-flop, so this is not a
	// combinational loop: build D = OR(Q, trigger) by declaring the OR
	// after the DFF and patching the DFF input.
	q := n.DFF(Zero) // placeholder D, patched below
	d := n.Or(q, trigger)
	n.gates[int(q)-2].in[0] = d
	return q, d
}

// EqualsConst returns a net that is 1 exactly when the bus (LSB first)
// carries the constant value v: an XNOR per bit folded by one AND — the
// per-weight decode gates of the Figure 8 generalized cell.
func (n *Netlist) EqualsConst(bus []Net, v uint64) Net {
	if len(bus) == 0 {
		panic("circuit: EqualsConst on empty bus")
	}
	if len(bus) < 64 && v >= 1<<uint(len(bus)) {
		panic(fmt.Sprintf("circuit: EqualsConst value %d does not fit in %d bits", v, len(bus)))
	}
	terms := make([]Net, len(bus))
	for i, b := range bus {
		if v>>uint(i)&1 == 1 {
			terms[i] = b
		} else {
			terms[i] = n.Not(b)
		}
	}
	return n.And(terms...)
}

// SatCounter builds a binary saturating up-counter of the given bit width:
// while enable is 1 the count increments each cycle until it reaches the
// all-ones value, where it holds ("making sure that the counter doesn't
// overflow and restart the count", Section 5).  It returns the count bus
// (LSB first).  The ripple-carry incrementer is built from XOR/AND cells;
// saturation is an AND over all count bits masking the carry-in.
func (n *Netlist) SatCounter(width int, enable Net) []Net {
	if width <= 0 {
		panic(fmt.Sprintf("circuit: SatCounter width %d", width))
	}
	// Flip-flops first (with placeholder D inputs), because the
	// increment logic feeds back from Q.
	q := make([]Net, width)
	for i := range q {
		q[i] = n.DFF(Zero)
	}
	sat := n.And(q...) // 1 when count is all-ones
	carry := n.And(enable, n.Not(sat))
	for i := 0; i < width; i++ {
		next := n.Xor(q[i], carry)
		n.gates[int(q[i])-2].in[0] = next
		if i+1 < width {
			carry = n.And(carry, q[i])
		}
	}
	return q
}

// SatCounterE is SatCounter with an additional clock-enable on every
// flip-flop, for use inside gated regions.  The counting enable and the
// clock enable are distinct: a region can be clocked while its counter
// holds, and vice versa is impossible (an unclocked DFF cannot change).
func (n *Netlist) SatCounterE(width int, enable, clockEnable Net) []Net {
	if width <= 0 {
		panic(fmt.Sprintf("circuit: SatCounterE width %d", width))
	}
	q := make([]Net, width)
	for i := range q {
		q[i] = n.DFFE(Zero, clockEnable)
	}
	sat := n.And(q...)
	carry := n.And(enable, n.Not(sat))
	for i := 0; i < width; i++ {
		next := n.Xor(q[i], carry)
		n.gates[int(q[i])-2].in[0] = next
		if i+1 < width {
			carry = n.And(carry, q[i])
		}
	}
	return q
}

// MuxN returns a tree of 2:1 muxes selecting inputs[sel] where sel is the
// little-endian select bus.  len(inputs) must be a power of two equal to
// 1 << len(sel).  This is the weight-select MUX of the Figure 8 cell
// ("the weight that is desired can be selected from the MUX whose inputs
// are the encoded forms of the alphabet").
func (n *Netlist) MuxN(sel []Net, inputs []Net) Net {
	if len(inputs) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("circuit: MuxN needs %d inputs for %d select bits, got %d",
			1<<uint(len(sel)), len(sel), len(inputs)))
	}
	layer := append([]Net(nil), inputs...)
	for bit := 0; bit < len(sel); bit++ {
		next := make([]Net, len(layer)/2)
		for i := range next {
			next[i] = n.Mux2(sel[bit], layer[2*i], layer[2*i+1])
		}
		layer = next
	}
	return layer[0]
}

// ConstBus returns a bus of the given width whose bits spell the constant
// v (LSB first) using the netlist's constant nets.
func (n *Netlist) ConstBus(width int, v uint64) []Net {
	bus := make([]Net, width)
	for i := range bus {
		if v>>uint(i)&1 == 1 {
			bus[i] = One
		} else {
			bus[i] = Zero
		}
	}
	return bus
}

// BitsFor returns the number of bits needed to represent v: the counter
// width the Section 5 cell needs for a dynamic range of v.
func BitsFor(v uint64) int {
	w := 1
	for 1<<uint(w) <= v {
		w++
	}
	return w
}
