// Package lanes is the bit-parallel simulation backend for compiled
// Race Logic netlists: one Sim races up to 64 independent candidate
// streams ("lanes") through a single compiled netlist at once.
//
// Every net's state is a uint64 word whose bit i is the net's value in
// lane i, so one combinational settle wave evaluates AND/OR/XOR/MUX
// word-wise for all lanes simultaneously — the software analogue of
// tiling 64 copies of the paper's edit-graph array and clocking them
// off one wavefront.  The event-wheel structure is the same as
// circuit/event (level-bucketed settle waves within a cycle, an armed
// flip-flop set across cycles), but a wave visit costs one word
// operation instead of one boolean per lane, so the per-candidate price
// of gate evaluation, wave bookkeeping, and clocking divides by the
// pack width.
//
// Accounting stays exact per lane, not per word: when a net's word
// changes, the XOR against its previous word yields the per-lane
// transition mask, and TrailingZeros-style bit extraction attributes
// each toggle to its lane's per-kind counters and first-arrival table.
// A lane can therefore be frozen independently (its race finished or
// hit the threshold bound) by masking it out of the accounting while
// the shared word simulation keeps stepping for the others — exactly
// reproducing what a solo scalar race would have recorded at its own
// stop cycle.  LaneActivity and LaneArrival rebuild the full
// circuit.Backend observables per lane, byte-identical to the
// cycle-accurate reference; the internal/oracle differential suite
// enforces that contract, with all 64 lanes driven in lockstep through
// the scalar Backend interface.  Keep it green when touching this file.
package lanes

import (
	"fmt"
	"math/bits"

	"racelogic/internal/circuit"
	"racelogic/internal/temporal"
)

// Width is the lane-pack capacity: one bit of a uint64 word per
// candidate.
const Width = 64

// numKinds sizes the per-kind × per-lane accounting tables.
//
//racelint:published set once at init, read-only afterwards
var numKinds = len(circuit.Kinds())

// readerPair is one (cell kind, pin count) load on a net, precomputed
// at Compile so per-toggle LoadToggles attribution is a short slice
// walk instead of a gate scan.
type readerPair struct {
	kind  circuit.Kind
	count uint32
}

// Sim is the bit-parallel backend.  Like the other backends it is not
// safe for concurrent use; compile one per goroutine (the pipeline's
// engine pools do exactly that).
type Sim struct {
	nl *circuit.Netlist

	// Static structure, gathered once at Compile.
	kinds []circuit.Kind
	ins   [][]circuit.Net
	level []int32 // comb gate → settle level; -1 for inputs and DFFs

	comb [][]int32 // net → comb gates reading it
	dOf  [][]int32 // net → FF slots whose D pin is this net
	eOf  [][]int32 // net → DFFE slots whose enable pin is this net

	ffGate  []int32       // slot → gate index
	ffEn    []circuit.Net // slot → enable net, or -1 for a plain DFF
	ffInitW []uint64      // slot → power-on Q word (0 or all-ones)
	plain   uint64        // flip-flops clocked every cycle (no enable pin)

	drivKind []circuit.Kind // net → kind of the driving cell
	readers  [][]readerPair // net → per-kind input-pin loads

	// Dynamic per-lane state.  vals and ffState are words (bit = lane);
	// the accounting tables are per (kind, lane) or per (net, lane).
	vals       []uint64
	ffState    []uint64
	arrived    []uint64        // net → lanes whose first 1 came after the reset settle
	firstOneAt []int32         // (net<<6)|lane → that arrival cycle; valid iff arrived bit set
	toggles0   []uint64        // net → lane-0 toggles, the scalar Toggles contract
	netTog     [][Width]uint64 // kind → per-lane toggles of nets driven by that kind
	loadTog    [][Width]uint64 // kind → per-lane toggles seen by that kind's input pins
	ffClocked  [Width]uint64   // lane → Σ enabled flip-flops per stepped cycle
	enabledE   [Width]uint64   // lane → DFFEs whose enable currently carries 1
	laneCycle  [Width]int      // lane → cycle its RaceUntil stopped at
	inputs     map[circuit.Net]uint64
	cycle      int

	// account masks the lanes whose transitions are recorded: all lanes
	// under the scalar Backend interface, the active pack during a lane
	// race, shrinking as lanes finish and freeze.
	account uint64

	// The armed set: flip-flops the next clock edge will change in at
	// least one lane (some lane enabled with D ≠ Q), maintained
	// incrementally as nets move.
	armed     []bool
	armedAt   []int32
	armedList []int32
	// Edge-time snapshot: the armed slots and their per-lane flip masks,
	// captured before any flip lands so sampling stays synchronous even
	// along direct Q→D chains.
	scratchSlots []int32
	scratchFlips []uint64

	// The settle wave: pending comb gates bucketed by level.
	buckets [][]int32
	queued  []bool
	pending int

	// Power-on settled baseline, so Reset is a copy instead of a
	// re-settle.  Baseline words are homogeneous (inputs are 0 in every
	// lane), so baseVals doubles as the cycle-0 arrival mask.
	baseVals     []uint64
	baseArmed    []int32
	baseEnabledE uint64
}

// Compile levelizes the netlist and returns a ready-to-run bit-parallel
// engine with all flip-flops at their power-on values and all inputs at
// 0 in every lane.  It fails with circuit.ErrCombLoop if the
// combinational gates form a cycle, exactly like the reference Compile.
func Compile(nl *circuit.Netlist) (*Sim, error) {
	ng := nl.NumGates()
	nn := nl.NumNets()
	s := &Sim{
		nl:         nl,
		kinds:      make([]circuit.Kind, ng),
		ins:        make([][]circuit.Net, ng),
		level:      make([]int32, ng),
		comb:       make([][]int32, nn),
		dOf:        make([][]int32, nn),
		eOf:        make([][]int32, nn),
		drivKind:   make([]circuit.Kind, nn),
		readers:    make([][]readerPair, nn),
		vals:       make([]uint64, nn),
		arrived:    make([]uint64, nn),
		firstOneAt: make([]int32, nn*Width),
		toggles0:   make([]uint64, nn),
		netTog:     make([][Width]uint64, numKinds),
		loadTog:    make([][Width]uint64, numKinds),
		inputs:     make(map[circuit.Net]uint64),
		queued:     make([]bool, ng),
		account:    ^uint64(0),
	}
	isComb := func(k circuit.Kind) bool { return k != circuit.KindDFF && k != circuit.KindInput }
	s.drivKind[circuit.Zero] = circuit.KindConst
	s.drivKind[circuit.One] = circuit.KindConst
	// readerCount[net*numKinds+kind] tallies pins during the structure
	// scan; it is compacted into the readers slices below and dropped.
	readerCount := make([]uint32, nn*numKinds)
	for i := 0; i < ng; i++ {
		g := nl.Gate(i)
		s.kinds[i] = g.Kind
		s.ins[i] = g.In
		s.level[i] = -1
		s.drivKind[i+2] = g.Kind
		for _, in := range g.In {
			readerCount[int(in)*numKinds+int(g.Kind)]++
		}
		if g.Kind == circuit.KindDFF {
			slot := len(s.ffGate)
			s.ffGate = append(s.ffGate, int32(i))
			if g.Init {
				s.ffInitW = append(s.ffInitW, ^uint64(0))
			} else {
				s.ffInitW = append(s.ffInitW, 0)
			}
			s.dOf[g.In[0]] = append(s.dOf[g.In[0]], int32(slot))
			if len(g.In) == 2 {
				s.ffEn = append(s.ffEn, g.In[1])
				s.eOf[g.In[1]] = append(s.eOf[g.In[1]], int32(slot))
			} else {
				s.ffEn = append(s.ffEn, -1)
				s.plain++
			}
		}
	}
	for net := 0; net < nn; net++ {
		for k := 0; k < numKinds; k++ {
			if c := readerCount[net*numKinds+k]; c != 0 {
				s.readers[net] = append(s.readers[net], readerPair{kind: circuit.Kind(k), count: c})
			}
		}
	}
	s.ffState = append([]uint64(nil), s.ffInitW...)

	// Levelize the combinational gates (Kahn over comb→comb edges,
	// longest-path levels) and index each net's comb fan-out.
	indeg := make([]int32, ng)
	combCount := 0
	for i := 0; i < ng; i++ {
		if !isComb(s.kinds[i]) {
			continue
		}
		combCount++
		for _, in := range s.ins[i] {
			s.comb[in] = append(s.comb[in], int32(i))
			if j := int(in) - 2; j >= 0 && isComb(s.kinds[j]) {
				indeg[i]++
			}
		}
	}
	frontier := make([]int32, 0, combCount)
	for i := 0; i < ng; i++ {
		if isComb(s.kinds[i]) && indeg[i] == 0 {
			s.level[i] = 0
			frontier = append(frontier, int32(i))
		}
	}
	processed := 0
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		processed++
		for _, v := range s.comb[int(u)+2] {
			if s.level[u]+1 > s.level[v] {
				s.level[v] = s.level[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if processed != combCount {
		return nil, circuit.ErrCombLoop
	}
	maxLvl := int32(0)
	for i := 0; i < ng; i++ {
		if s.level[i] > maxLvl {
			maxLvl = s.level[i]
		}
	}
	s.buckets = make([][]int32, maxLvl+1)

	// Power-on settle: one full word pass in level order, then latch the
	// settled state as the Reset baseline.  Like the reference Compile,
	// the initial settle records arrivals but counts no toggles.
	s.vals[circuit.One] = ^uint64(0)
	for slot, gi := range s.ffGate {
		s.vals[int(gi)+2] = s.ffInitW[slot]
	}
	byLevel := make([][]int32, maxLvl+1)
	for i := 0; i < ng; i++ {
		if isComb(s.kinds[i]) {
			byLevel[s.level[i]] = append(byLevel[s.level[i]], int32(i))
		}
	}
	for _, bucket := range byLevel {
		for _, gi := range bucket {
			s.vals[int(gi)+2] = s.eval(gi)
		}
	}
	for _, en := range s.ffEn {
		if en >= 0 && s.vals[en] != 0 {
			s.baseEnabledE++
		}
	}
	for l := range s.enabledE {
		s.enabledE[l] = s.baseEnabledE
	}
	s.armed = make([]bool, len(s.ffGate))
	s.armedAt = make([]int32, len(s.ffGate))
	for slot := range s.ffGate {
		s.rearm(int32(slot))
	}

	s.baseVals = append([]uint64(nil), s.vals...)
	s.baseArmed = append([]int32(nil), s.armedList...)
	return s, nil
}

// Reset returns the engine to its power-on settled state without
// re-levelizing: the baseline captured at Compile is copied back, the
// accounting cleared, and every lane re-activated for the scalar
// Backend contract.  Call SetActiveLanes afterwards to start a pack.
func (s *Sim) Reset() {
	copy(s.vals, s.baseVals)
	for i := range s.arrived {
		s.arrived[i] = 0
	}
	for i := range s.toggles0 {
		s.toggles0[i] = 0
	}
	for k := range s.netTog {
		s.netTog[k] = [Width]uint64{}
		s.loadTog[k] = [Width]uint64{}
	}
	s.ffClocked = [Width]uint64{}
	s.laneCycle = [Width]int{}
	copy(s.ffState, s.ffInitW)
	clear(s.inputs)
	s.cycle = 0
	s.account = ^uint64(0)
	for l := range s.enabledE {
		s.enabledE[l] = s.baseEnabledE
	}
	for _, slot := range s.armedList {
		s.armed[slot] = false
	}
	s.armedList = s.armedList[:0]
	for _, slot := range s.baseArmed {
		s.armed[slot] = true
		s.armedAt[slot] = int32(len(s.armedList))
		s.armedList = append(s.armedList, slot)
	}
}

// eval computes a combinational gate's output word from current net
// words — bitwise boolean algebra evaluates all 64 lanes at once.
func (s *Sim) eval(gi int32) uint64 {
	in := s.ins[gi]
	switch s.kinds[gi] {
	case circuit.KindBuf:
		return s.vals[in[0]]
	case circuit.KindNot:
		return ^s.vals[in[0]]
	case circuit.KindAnd:
		w := ^uint64(0)
		for _, x := range in {
			w &= s.vals[x]
		}
		return w
	case circuit.KindOr:
		var w uint64
		for _, x := range in {
			w |= s.vals[x]
		}
		return w
	case circuit.KindXor:
		return s.vals[in[0]] ^ s.vals[in[1]]
	case circuit.KindXnor:
		return ^(s.vals[in[0]] ^ s.vals[in[1]])
	case circuit.KindMux2:
		sel := s.vals[in[0]]
		return (sel & s.vals[in[2]]) | (^sel & s.vals[in[1]])
	default:
		panic(fmt.Sprintf("lanes: unexpected combinational kind %v", s.kinds[gi]))
	}
}

// enWord returns a flip-flop's per-lane enable mask: all-ones for a
// plain DFF, the enable net's word for a DFFE.
func (s *Sim) enWord(slot int32) uint64 {
	if en := s.ffEn[slot]; en >= 0 {
		return s.vals[en]
	}
	return ^uint64(0)
}

// rearm recomputes one flip-flop's membership in the armed set: armed
// when any lane is enabled with D ≠ Q.
func (s *Sim) rearm(slot int32) {
	d := s.ins[s.ffGate[slot]][0]
	want := s.enWord(slot)&(s.vals[d]^s.ffState[slot]) != 0
	if want == s.armed[slot] {
		return
	}
	if want {
		s.armed[slot] = true
		s.armedAt[slot] = int32(len(s.armedList))
		s.armedList = append(s.armedList, slot)
		return
	}
	s.armed[slot] = false
	i := s.armedAt[slot]
	last := s.armedList[len(s.armedList)-1]
	s.armedList[i] = last
	s.armedAt[last] = i
	s.armedList = s.armedList[:len(s.armedList)-1]
}

// setWord commits a changed net word: per-lane accounting first, then
// the comb fan-out is enqueued on the wave and flip-flops listening on
// the net (as D or enable) are re-armed.
func (s *Sim) setWord(net circuit.Net, w uint64) {
	old := s.vals[net]
	s.vals[net] = w
	diff := old ^ w
	if acc := diff & s.account; acc != 0 {
		s.accountWord(net, w, acc)
	}
	for _, gi := range s.comb[net] {
		if !s.queued[gi] {
			s.queued[gi] = true
			s.buckets[s.level[gi]] = append(s.buckets[s.level[gi]], gi)
			s.pending++
		}
	}
	for _, slot := range s.dOf[net] {
		s.rearm(slot)
	}
	if e := s.eOf[net]; len(e) > 0 {
		// Track every lane's true enable population, frozen or not — the
		// per-lane clock accounting reads it only for accounted lanes.
		ne := uint64(len(e))
		for m := diff & w; m != 0; m &= m - 1 {
			s.enabledE[bits.TrailingZeros64(m)] += ne
		}
		for m := diff &^ w; m != 0; m &= m - 1 {
			s.enabledE[bits.TrailingZeros64(m)] -= ne
		}
		for _, slot := range e {
			s.rearm(slot)
		}
	}
}

// accountWord attributes one net's transition mask to the per-lane
// toggle, load, and arrival tables — the popcount-of-XOR step that
// keeps lane accounting byte-identical to a solo scalar race.
func (s *Sim) accountWord(net circuit.Net, w, acc uint64) {
	tog := &s.netTog[s.drivKind[net]]
	for m := acc; m != 0; m &= m - 1 {
		tog[bits.TrailingZeros64(m)]++
	}
	if acc&1 != 0 {
		s.toggles0[net]++
	}
	for _, rp := range s.readers[net] {
		lt := &s.loadTog[rp.kind]
		c := uint64(rp.count)
		for m := acc; m != 0; m &= m - 1 {
			lt[bits.TrailingZeros64(m)] += c
		}
	}
	if rise := w & acc &^ s.baseVals[net] &^ s.arrived[net]; rise != 0 {
		s.arrived[net] |= rise
		base := int(net) << 6
		c := int32(s.cycle)
		for m := rise; m != 0; m &= m - 1 {
			s.firstOneAt[base+bits.TrailingZeros64(m)] = c
		}
	}
}

// settleWave drains the pending comb gates in level order.  A gate only
// ever enqueues gates at strictly higher levels, so each gate is
// evaluated at most once per wave; because bit positions never
// interact, the single word pass settles every lane exactly as its own
// scalar topological pass would.
func (s *Sim) settleWave() {
	for lvl := 0; s.pending > 0 && lvl < len(s.buckets); lvl++ {
		b := s.buckets[lvl]
		if len(b) == 0 {
			continue
		}
		s.buckets[lvl] = b[:0]
		for _, gi := range b {
			s.queued[gi] = false
			s.pending--
			out := circuit.Net(int(gi) + 2)
			if w := s.eval(gi); w != s.vals[out] {
				s.setWord(out, w)
			}
		}
	}
}

// SetActiveLanes restricts accounting (and input broadcast) to the
// given lane mask — the start of a pack race.  Call it immediately
// after Reset, before driving any input; lanes outside the mask stay at
// the quiescent power-on baseline and record nothing.
func (s *Sim) SetActiveLanes(mask uint64) {
	s.account = mask
}

// SetInputWord drives an external input pin with a per-lane word; bits
// outside the active mask are ignored.  The change settles immediately
// in the current cycle, with each changed lane accounted exactly as a
// scalar SetInput would have been.
func (s *Sim) SetInputWord(net circuit.Net, w uint64) {
	gi := int(net) - 2
	if gi < 0 || gi >= len(s.kinds) || s.kinds[gi] != circuit.KindInput {
		panic(fmt.Sprintf("lanes: SetInput on non-input net %d", net))
	}
	w &= s.account
	if s.inputs[net] == w {
		return
	}
	s.inputs[net] = w
	if s.vals[net] != w {
		s.setWord(net, w)
		s.settleWave()
	}
}

// SetInput drives an input pin in every active lane — the scalar
// Backend contract, under which all 64 lanes run in lockstep.
func (s *Sim) SetInput(net circuit.Net, v bool) {
	var w uint64
	if v {
		w = ^uint64(0)
	}
	s.SetInputWord(net, w)
}

// SetInputName drives an input pin by name.
func (s *Sim) SetInputName(name string, v bool) error {
	net, err := s.nl.InputNet(name)
	if err != nil {
		return err
	}
	s.SetInput(net, v)
	return nil
}

// step advances one clock cycle.  The edge first snapshots every armed
// slot's per-lane flip mask (enable ∧ D≠Q) from pre-edge values — the
// snapshot makes the sampling synchronous even along direct Q→D chains
// — then applies the flips and settles the triggered wave.  Clock
// accounting covers every enabled flip-flop of every accounted lane,
// armed or not, exactly like the reference.
func (s *Sim) step() {
	for m := s.account; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		s.ffClocked[l] += s.plain + s.enabledE[l]
	}
	s.cycle++
	if len(s.armedList) == 0 {
		return
	}
	s.scratchSlots = s.scratchSlots[:0]
	s.scratchFlips = s.scratchFlips[:0]
	for _, slot := range s.armedList {
		d := s.ins[s.ffGate[slot]][0]
		flip := s.enWord(slot) & (s.vals[d] ^ s.ffState[slot])
		s.scratchSlots = append(s.scratchSlots, slot)
		s.scratchFlips = append(s.scratchFlips, flip)
	}
	for i, slot := range s.scratchSlots {
		q := s.ffState[slot] ^ s.scratchFlips[i]
		s.ffState[slot] = q
		s.rearm(slot)
		s.setWord(circuit.Net(int(s.ffGate[slot])+2), q)
	}
	s.settleWave()
}

// Step advances the simulation by one clock cycle.
func (s *Sim) Step() { s.step() }

// Run advances k cycles, fast-forwarding through quiescence: with no
// armed flip-flop nothing can change until an input does, so the
// remaining cycles collapse into per-lane clock accounting.
func (s *Sim) Run(k int) {
	for i := 0; i < k; i++ {
		if len(s.armedList) == 0 {
			s.forward(k - i)
			return
		}
		s.step()
	}
}

// forward advances k quiescent cycles: clock accounting only, for every
// accounted lane.
func (s *Sim) forward(k int) {
	for m := s.account; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		s.ffClocked[l] += uint64(k) * (s.plain + s.enabledE[l])
	}
	s.cycle += k
}

// RunUntil steps until net first carries a 1 in lane 0 and returns the
// arrival time, or temporal.Never if it has not arrived after
// maxCycles — the scalar Backend contract.  A quiescent circuit
// advances straight to the horizon.
func (s *Sim) RunUntil(net circuit.Net, maxCycles int) temporal.Time {
	for !s.laneArrived(net, 0) && s.cycle < maxCycles {
		if len(s.armedList) == 0 {
			s.forward(maxCycles - s.cycle)
			break
		}
		s.step()
	}
	return s.LaneArrival(net, 0)
}

// laneArrived reports whether net has carried a 1 in the given lane.
func (s *Sim) laneArrived(net circuit.Net, lane int) bool {
	return (s.baseVals[net]|s.arrived[net])>>uint(lane)&1 != 0
}

// RaceUntil runs the pack race: it steps until every active lane's copy
// of net has fired or maxCycles is reached, freezing each lane at its
// own stop cycle — the cycle its scalar RunUntil would have returned
// at.  A frozen lane stops accumulating toggles, arrivals, and clock
// cycles while the shared word simulation keeps stepping for the rest.
// LaneCycle, LaneArrival, and LaneActivity read the per-lane outcomes
// afterwards.
func (s *Sim) RaceUntil(net circuit.Net, maxCycles int) {
	racing := s.account
	if arr := (s.baseVals[net] | s.arrived[net]) & racing; arr != 0 {
		racing = s.freeze(racing, arr)
	}
	for racing != 0 && s.cycle < maxCycles {
		if len(s.armedList) == 0 {
			// Quiescent in every lane: no remaining output can ever fire,
			// so the unfinished lanes coast to the bound on clock
			// accounting alone.
			k := maxCycles - s.cycle
			for m := racing; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				s.ffClocked[l] += uint64(k) * (s.plain + s.enabledE[l])
			}
			s.cycle = maxCycles
			break
		}
		s.step()
		if arr := s.arrived[net] & racing; arr != 0 {
			racing = s.freeze(racing, arr)
		}
	}
	// Lanes that never fired stop at the bound, like a scalar RunUntil
	// returning Never at maxCycles.
	for m := racing; m != 0; m &= m - 1 {
		s.laneCycle[bits.TrailingZeros64(m)] = s.cycle
	}
	s.account &^= racing
}

// freeze retires the given lanes at the current cycle and masks them
// out of all further accounting.
func (s *Sim) freeze(racing, arr uint64) uint64 {
	for m := arr; m != 0; m &= m - 1 {
		s.laneCycle[bits.TrailingZeros64(m)] = s.cycle
	}
	s.account &^= arr
	return racing &^ arr
}

// Cycle returns the number of Steps taken so far (fast-forwarded
// quiescent cycles included).
func (s *Sim) Cycle() int { return s.cycle }

// LaneCycle returns the cycle the given lane's RaceUntil stopped at.
func (s *Sim) LaneCycle(lane int) int { return s.laneCycle[lane] }

// Value returns the current settled value of a net in lane 0.
func (s *Sim) Value(net circuit.Net) bool { return s.vals[net]&1 != 0 }

// LaneValue returns the current settled value of a net in the given lane.
func (s *Sim) LaneValue(net circuit.Net, lane int) bool {
	return s.vals[net]>>uint(lane)&1 != 0
}

// Arrival returns the cycle at which the net first carried a 1 in lane
// 0, or temporal.Never.
func (s *Sim) Arrival(net circuit.Net) temporal.Time { return s.LaneArrival(net, 0) }

// LaneArrival returns the cycle at which the net first carried a 1 in
// the given lane, or temporal.Never if it had not fired when the lane
// froze.
func (s *Sim) LaneArrival(net circuit.Net, lane int) temporal.Time {
	bit := uint64(1) << uint(lane)
	if s.baseVals[net]&bit != 0 {
		return 0
	}
	if s.arrived[net]&bit != 0 {
		return temporal.Time(s.firstOneAt[int(net)<<6|lane])
	}
	return temporal.Never
}

// Toggles returns the cumulative toggle count of a net in lane 0.
func (s *Sim) Toggles(net circuit.Net) uint64 { return s.toggles0[net] }

// Activity summarizes lane 0 of the simulation so far — the scalar
// Backend contract, using the shared cycle counter.
func (s *Sim) Activity() circuit.Activity { return s.activity(0, s.cycle) }

// LaneActivity summarizes one lane of a finished pack race, as of the
// cycle the lane froze at.  It is byte-identical to the Activity a solo
// scalar race of that lane's candidate would have reported.
func (s *Sim) LaneActivity(lane int) circuit.Activity {
	return s.activity(lane, s.laneCycle[lane])
}

func (s *Sim) activity(lane, cycles int) circuit.Activity {
	a := circuit.Activity{
		Cycles:          cycles,
		GateCount:       s.nl.CountByKind(),
		FanInCount:      s.nl.FanIn(),
		NetToggles:      make(map[circuit.Kind]uint64),
		LoadToggles:     make(map[circuit.Kind]uint64),
		FFClockedCycles: s.ffClocked[lane],
		NumDFFs:         s.nl.NumDFFs(),
	}
	for _, k := range circuit.Kinds() {
		if t := s.netTog[k][lane]; t != 0 {
			a.NetToggles[k] = t
		}
		if t := s.loadTog[k][lane]; t != 0 {
			a.LoadToggles[k] = t
		}
	}
	return a
}

// The bit-parallel engine satisfies the shared backend contract.
var _ circuit.Backend = (*Sim)(nil)
