// Package lanes is the bit-parallel simulation backend for compiled
// Race Logic netlists: one Sim races up to 512 independent candidate
// streams ("lanes") through a single compiled netlist at once.
//
// Every net's state is a slab of W uint64 words (W ∈ {1, 2, 4, 8},
// chosen at CompileWords), laid out net-major: lane l of net n lives in
// word n*W + l/64, bit l%64.  One combinational settle wave evaluates
// AND/OR/XOR/MUX word-slice-wise for all W·64 lanes simultaneously —
// the software analogue of tiling W·64 copies of the paper's edit-graph
// array and clocking them off one wavefront.  The event-wheel structure
// is the same as circuit/event (level-bucketed settle waves within a
// cycle, an armed flip-flop set across cycles), but a wave visit costs
// W word operations instead of one boolean per lane, so the
// per-candidate price of gate evaluation, wave bookkeeping, and
// clocking divides by the pack width.
//
// Accounting stays exact per lane, not per word: when a net's word
// changes, the XOR against its previous word yields the per-lane
// transition mask, and TrailingZeros-style bit extraction attributes
// each toggle to its lane's per-kind counters and first-arrival table.
// A lane can therefore be frozen independently (its race finished or
// hit the threshold bound) by masking it out of the per-word accounting
// masks while the shared word simulation keeps stepping for the others
// — exactly reproducing what a solo scalar race would have recorded at
// its own stop cycle.  LaneActivity and LaneArrival rebuild the full
// circuit.Backend observables per lane, byte-identical to the
// cycle-accurate reference; the internal/oracle differential suite
// enforces that contract at several widths, with all lanes driven in
// lockstep through the scalar Backend interface and divergent lanes
// scattered across words through the word-parallel check.  Keep it
// green when touching this file.
package lanes

import (
	"fmt"
	"math/bits"

	"racelogic/internal/circuit"
	"racelogic/internal/temporal"
)

// WordBits is the lane capacity of one uint64 word.
const WordBits = 64

// MaxWords bounds the slab width: up to 8 words = 512 lanes per pack.
const MaxWords = 8

// numKinds sizes the per-kind × per-lane accounting tables.
//
//racelint:published set once at init, read-only afterwards
var numKinds = len(circuit.Kinds())

// readerPair is one (cell kind, pin count) load on a net, precomputed
// at Compile so per-toggle LoadToggles attribution is a short slice
// walk instead of a gate scan.
type readerPair struct {
	kind  circuit.Kind
	count uint32
}

// Sim is the bit-parallel backend.  Like the other backends it is not
// safe for concurrent use; compile one per goroutine (the pipeline's
// engine pools do exactly that).
type Sim struct {
	nl    *circuit.Netlist
	words int // W: words per net slab
	width int // words * WordBits: lanes per pack

	// Static structure, gathered once at Compile.
	kinds []circuit.Kind
	ins   [][]circuit.Net
	level []int32 // comb gate → settle level; -1 for inputs and DFFs

	comb [][]int32 // net → comb gates reading it
	dOf  [][]int32 // net → FF slots whose D pin is this net
	eOf  [][]int32 // net → DFFE slots whose enable pin is this net

	ffGate  []int32       // slot → gate index
	ffEn    []circuit.Net // slot → enable net, or -1 for a plain DFF
	ffInitW []uint64      // slot → power-on Q word pattern (0 or all-ones)
	plain   uint64        // flip-flops clocked every cycle (no enable pin)

	drivKind []circuit.Kind // net → kind of the driving cell
	readers  [][]readerPair // net → per-kind input-pin loads

	// Dynamic per-lane state.  vals, ffState, and arrived are W-word
	// slabs (net*W+w, bit = lane within word w); the accounting tables
	// are per (kind, lane) or per (net, lane).
	vals       []uint64
	ffState    []uint64   // slot*W+w
	arrived    []uint64   // net*W+w → lanes whose first 1 came after the reset settle
	firstOneAt []int32    // net*width+lane → that arrival cycle; valid iff arrived bit set
	toggles0   []uint64   // net → lane-0 toggles, the scalar Toggles contract
	netTog     [][]uint64 // kind → per-lane toggles of nets driven by that kind
	loadTog    [][]uint64 // kind → per-lane toggles seen by that kind's input pins
	ffClocked  []uint64   // lane → Σ enabled flip-flops per stepped cycle
	enabledE   []uint64   // lane → DFFEs whose enable currently carries 1
	laneCycle  []int      // lane → cycle its RaceUntil stopped at
	cycle      int

	// account masks, word by word, the lanes whose transitions are
	// recorded: all lanes under the scalar Backend interface, the active
	// pack during a lane race, shrinking as lanes finish and freeze.
	account []uint64

	// The armed set: flip-flops the next clock edge will change in at
	// least one lane (some lane enabled with D ≠ Q), maintained
	// incrementally as nets move.
	armed     []bool
	armedAt   []int32
	armedList []int32
	// Edge-time snapshot: the armed slots and their per-lane flip masks
	// (W words per slot), captured before any flip lands so sampling
	// stays synchronous even along direct Q→D chains.
	scratchSlots []int32
	scratchFlips []uint64

	// The settle wave: pending comb gates bucketed by level.
	buckets [][]int32
	queued  []bool
	pending int

	// W-word scratch slabs, reused across calls to keep the hot paths
	// allocation-free.
	evalBuf   []uint64  // settle-wave gate output
	qBuf      []uint64  // step's flip application
	inBuf     []uint64  // SetInputWords masking
	bcastBuf  []uint64  // SetInput broadcast
	racingBuf []uint64  // RaceUntil lane mask
	oneBuf    [1]uint64 // SetInputWord word-0 convenience

	// Power-on settled baseline, so Reset is a copy instead of a
	// re-settle.  Baseline words are homogeneous (inputs are 0 in every
	// lane), so baseVals doubles as the cycle-0 arrival mask.
	baseVals     []uint64
	baseArmed    []int32
	baseEnabledE uint64
}

// Compile builds a single-word (64-lane) engine — the scalar
// circuit.Backend entry point, equivalent to CompileWords(nl, 1).
func Compile(nl *circuit.Netlist) (*Sim, error) { return CompileWords(nl, 1) }

// CompileWords levelizes the netlist and returns a ready-to-run
// bit-parallel engine whose per-net state is a slab of the given number
// of words (1, 2, 4, or 8 → 64, 128, 256, or 512 lanes), with all
// flip-flops at their power-on values and all inputs at 0 in every
// lane.  It fails with circuit.ErrCombLoop if the combinational gates
// form a cycle, exactly like the reference Compile.
func CompileWords(nl *circuit.Netlist, words int) (*Sim, error) {
	switch words {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("lanes: slab width %d words is not one of 1, 2, 4, 8", words)
	}
	ng := nl.NumGates()
	nn := nl.NumNets()
	width := words * WordBits
	s := &Sim{
		nl:         nl,
		words:      words,
		width:      width,
		kinds:      make([]circuit.Kind, ng),
		ins:        make([][]circuit.Net, ng),
		level:      make([]int32, ng),
		comb:       make([][]int32, nn),
		dOf:        make([][]int32, nn),
		eOf:        make([][]int32, nn),
		drivKind:   make([]circuit.Kind, nn),
		readers:    make([][]readerPair, nn),
		vals:       make([]uint64, nn*words),
		arrived:    make([]uint64, nn*words),
		firstOneAt: make([]int32, nn*width),
		toggles0:   make([]uint64, nn),
		netTog:     make([][]uint64, numKinds),
		loadTog:    make([][]uint64, numKinds),
		ffClocked:  make([]uint64, width),
		enabledE:   make([]uint64, width),
		laneCycle:  make([]int, width),
		account:    make([]uint64, words),
		queued:     make([]bool, ng),
		evalBuf:    make([]uint64, words),
		qBuf:       make([]uint64, words),
		inBuf:      make([]uint64, words),
		bcastBuf:   make([]uint64, words),
		racingBuf:  make([]uint64, words),
	}
	for k := range s.netTog {
		s.netTog[k] = make([]uint64, width)
		s.loadTog[k] = make([]uint64, width)
	}
	for w := range s.account {
		s.account[w] = ^uint64(0)
	}
	isComb := func(k circuit.Kind) bool { return k != circuit.KindDFF && k != circuit.KindInput }
	s.drivKind[circuit.Zero] = circuit.KindConst
	s.drivKind[circuit.One] = circuit.KindConst
	// readerCount[net*numKinds+kind] tallies pins during the structure
	// scan; it is compacted into the readers slices below and dropped.
	readerCount := make([]uint32, nn*numKinds)
	for i := 0; i < ng; i++ {
		g := nl.Gate(i)
		s.kinds[i] = g.Kind
		s.ins[i] = g.In
		s.level[i] = -1
		s.drivKind[i+2] = g.Kind
		for _, in := range g.In {
			readerCount[int(in)*numKinds+int(g.Kind)]++
		}
		if g.Kind == circuit.KindDFF {
			slot := len(s.ffGate)
			s.ffGate = append(s.ffGate, int32(i))
			if g.Init {
				s.ffInitW = append(s.ffInitW, ^uint64(0))
			} else {
				s.ffInitW = append(s.ffInitW, 0)
			}
			s.dOf[g.In[0]] = append(s.dOf[g.In[0]], int32(slot))
			if len(g.In) == 2 {
				s.ffEn = append(s.ffEn, g.In[1])
				s.eOf[g.In[1]] = append(s.eOf[g.In[1]], int32(slot))
			} else {
				s.ffEn = append(s.ffEn, -1)
				s.plain++
			}
		}
	}
	for net := 0; net < nn; net++ {
		for k := 0; k < numKinds; k++ {
			if c := readerCount[net*numKinds+k]; c != 0 {
				s.readers[net] = append(s.readers[net], readerPair{kind: circuit.Kind(k), count: c})
			}
		}
	}
	s.ffState = make([]uint64, len(s.ffGate)*words)
	for slot, init := range s.ffInitW {
		for w := 0; w < words; w++ {
			s.ffState[slot*words+w] = init
		}
	}

	// Levelize the combinational gates (Kahn over comb→comb edges,
	// longest-path levels) and index each net's comb fan-out.
	indeg := make([]int32, ng)
	combCount := 0
	for i := 0; i < ng; i++ {
		if !isComb(s.kinds[i]) {
			continue
		}
		combCount++
		for _, in := range s.ins[i] {
			s.comb[in] = append(s.comb[in], int32(i))
			if j := int(in) - 2; j >= 0 && isComb(s.kinds[j]) {
				indeg[i]++
			}
		}
	}
	frontier := make([]int32, 0, combCount)
	for i := 0; i < ng; i++ {
		if isComb(s.kinds[i]) && indeg[i] == 0 {
			s.level[i] = 0
			frontier = append(frontier, int32(i))
		}
	}
	processed := 0
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		processed++
		for _, v := range s.comb[int(u)+2] {
			if s.level[u]+1 > s.level[v] {
				s.level[v] = s.level[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if processed != combCount {
		return nil, circuit.ErrCombLoop
	}
	maxLvl := int32(0)
	for i := 0; i < ng; i++ {
		if s.level[i] > maxLvl {
			maxLvl = s.level[i]
		}
	}
	s.buckets = make([][]int32, maxLvl+1)

	// Power-on settle: one full slab pass in level order, then latch the
	// settled state as the Reset baseline.  Like the reference Compile,
	// the initial settle records arrivals but counts no toggles.
	for w := 0; w < words; w++ {
		s.vals[int(circuit.One)*words+w] = ^uint64(0)
	}
	for slot, gi := range s.ffGate {
		base := (int(gi) + 2) * words
		for w := 0; w < words; w++ {
			s.vals[base+w] = s.ffInitW[slot]
		}
	}
	byLevel := make([][]int32, maxLvl+1)
	for i := 0; i < ng; i++ {
		if isComb(s.kinds[i]) {
			byLevel[s.level[i]] = append(byLevel[s.level[i]], int32(i))
		}
	}
	for _, bucket := range byLevel {
		for _, gi := range bucket {
			base := (int(gi) + 2) * words
			s.eval(gi, s.vals[base:base+words])
		}
	}
	for _, en := range s.ffEn {
		if en >= 0 && s.vals[int(en)*words] != 0 {
			s.baseEnabledE++
		}
	}
	for l := range s.enabledE {
		s.enabledE[l] = s.baseEnabledE
	}
	s.armed = make([]bool, len(s.ffGate))
	s.armedAt = make([]int32, len(s.ffGate))
	for slot := range s.ffGate {
		s.rearm(int32(slot))
	}

	s.baseVals = append([]uint64(nil), s.vals...)
	s.baseArmed = append([]int32(nil), s.armedList...)
	return s, nil
}

// Words returns the slab width W fixed at CompileWords.
func (s *Sim) Words() int { return s.words }

// Width returns the lane-pack capacity: Words() × 64.
func (s *Sim) Width() int { return s.width }

// Reset returns the engine to its power-on settled state without
// re-levelizing: the baseline captured at Compile is copied back, the
// accounting cleared, and every lane re-activated for the scalar
// Backend contract.  Call SetActiveLanes afterwards to start a pack.
func (s *Sim) Reset() {
	copy(s.vals, s.baseVals)
	for i := range s.arrived {
		s.arrived[i] = 0
	}
	for i := range s.toggles0 {
		s.toggles0[i] = 0
	}
	for k := range s.netTog {
		nt, lt := s.netTog[k], s.loadTog[k]
		for l := range nt {
			nt[l] = 0
			lt[l] = 0
		}
	}
	for l := 0; l < s.width; l++ {
		s.ffClocked[l] = 0
		s.laneCycle[l] = 0
		s.enabledE[l] = s.baseEnabledE
	}
	for slot, init := range s.ffInitW {
		for w := 0; w < s.words; w++ {
			s.ffState[slot*s.words+w] = init
		}
	}
	s.cycle = 0
	for w := range s.account {
		s.account[w] = ^uint64(0)
	}
	for _, slot := range s.armedList {
		s.armed[slot] = false
	}
	s.armedList = s.armedList[:0]
	for _, slot := range s.baseArmed {
		s.armed[slot] = true
		s.armedAt[slot] = int32(len(s.armedList))
		s.armedList = append(s.armedList, slot)
	}
}

// eval computes a combinational gate's output slab into out (W words)
// from current net slabs — bitwise boolean algebra evaluates all lanes
// of a word at once, and the word loop covers the slab.
func (s *Sim) eval(gi int32, out []uint64) {
	in := s.ins[gi]
	W := s.words
	vals := s.vals
	switch s.kinds[gi] {
	case circuit.KindBuf:
		b := int(in[0]) * W
		copy(out, vals[b:b+W])
	case circuit.KindNot:
		b := int(in[0]) * W
		src := vals[b : b+W : b+W]
		for w := range out {
			out[w] = ^src[w]
		}
	case circuit.KindAnd:
		b := int(in[0]) * W
		copy(out, vals[b:b+W])
		for _, x := range in[1:] {
			b := int(x) * W
			src := vals[b : b+W : b+W]
			for w := range out {
				out[w] &= src[w]
			}
		}
	case circuit.KindOr:
		b := int(in[0]) * W
		copy(out, vals[b:b+W])
		for _, x := range in[1:] {
			b := int(x) * W
			src := vals[b : b+W : b+W]
			for w := range out {
				out[w] |= src[w]
			}
		}
	case circuit.KindXor:
		a, b := int(in[0])*W, int(in[1])*W
		sa := vals[a : a+W : a+W]
		sb := vals[b : b+W : b+W]
		for w := range out {
			out[w] = sa[w] ^ sb[w]
		}
	case circuit.KindXnor:
		a, b := int(in[0])*W, int(in[1])*W
		sa := vals[a : a+W : a+W]
		sb := vals[b : b+W : b+W]
		for w := range out {
			out[w] = ^(sa[w] ^ sb[w])
		}
	case circuit.KindMux2:
		sl, a, b := int(in[0])*W, int(in[1])*W, int(in[2])*W
		ss := vals[sl : sl+W : sl+W]
		sa := vals[a : a+W : a+W]
		sb := vals[b : b+W : b+W]
		for w := range out {
			out[w] = (ss[w] & sb[w]) | (^ss[w] & sa[w])
		}
	default:
		panic(fmt.Sprintf("lanes: unexpected combinational kind %v", s.kinds[gi]))
	}
}

// rearm recomputes one flip-flop's membership in the armed set: armed
// when any lane of any word is enabled with D ≠ Q.
func (s *Sim) rearm(slot int32) {
	W := s.words
	d := int(s.ins[s.ffGate[slot]][0]) * W
	fb := int(slot) * W
	want := false
	if en := s.ffEn[slot]; en >= 0 {
		eb := int(en) * W
		for w := 0; w < W; w++ {
			if s.vals[eb+w]&(s.vals[d+w]^s.ffState[fb+w]) != 0 {
				want = true
				break
			}
		}
	} else {
		for w := 0; w < W; w++ {
			if s.vals[d+w]^s.ffState[fb+w] != 0 {
				want = true
				break
			}
		}
	}
	if want == s.armed[slot] {
		return
	}
	if want {
		s.armed[slot] = true
		s.armedAt[slot] = int32(len(s.armedList))
		s.armedList = append(s.armedList, slot)
		return
	}
	s.armed[slot] = false
	i := s.armedAt[slot]
	last := s.armedList[len(s.armedList)-1]
	s.armedList[i] = last
	s.armedAt[last] = i
	s.armedList = s.armedList[:len(s.armedList)-1]
}

// setWords commits a changed net slab: per-lane accounting word by
// word, then the comb fan-out is enqueued on the wave and flip-flops
// listening on the net (as D or enable) are re-armed.  neww must hold W
// words and must differ from the current slab in at least one of them.
func (s *Sim) setWords(net circuit.Net, neww []uint64) {
	W := s.words
	base := int(net) * W
	cur := s.vals[base : base+W : base+W]
	e := s.eOf[net]
	ne := uint64(len(e))
	for w := 0; w < W; w++ {
		old := cur[w]
		nw := neww[w]
		diff := old ^ nw
		if diff == 0 {
			continue
		}
		cur[w] = nw
		if acc := diff & s.account[w]; acc != 0 {
			s.accountWord(net, w, nw, acc)
		}
		if ne != 0 {
			// Track every lane's true enable population, frozen or not —
			// the per-lane clock accounting reads it only for accounted
			// lanes.
			wl := w << 6
			for m := diff & nw; m != 0; m &= m - 1 {
				s.enabledE[wl+bits.TrailingZeros64(m)] += ne
			}
			for m := diff &^ nw; m != 0; m &= m - 1 {
				s.enabledE[wl+bits.TrailingZeros64(m)] -= ne
			}
		}
	}
	for _, gi := range s.comb[net] {
		if !s.queued[gi] {
			s.queued[gi] = true
			s.buckets[s.level[gi]] = append(s.buckets[s.level[gi]], gi)
			s.pending++
		}
	}
	for _, slot := range s.dOf[net] {
		s.rearm(slot)
	}
	for _, slot := range e {
		s.rearm(slot)
	}
}

// accountWord attributes one word's transition mask to the per-lane
// toggle, load, and arrival tables — the popcount-of-XOR step that
// keeps lane accounting byte-identical to a solo scalar race.
func (s *Sim) accountWord(net circuit.Net, w int, nw, acc uint64) {
	wl := w << 6
	tog := s.netTog[s.drivKind[net]]
	for m := acc; m != 0; m &= m - 1 {
		tog[wl+bits.TrailingZeros64(m)]++
	}
	if w == 0 && acc&1 != 0 {
		s.toggles0[net]++
	}
	for _, rp := range s.readers[net] {
		lt := s.loadTog[rp.kind]
		c := uint64(rp.count)
		for m := acc; m != 0; m &= m - 1 {
			lt[wl+bits.TrailingZeros64(m)] += c
		}
	}
	slab := int(net)*s.words + w
	if rise := nw & acc &^ s.baseVals[slab] &^ s.arrived[slab]; rise != 0 {
		s.arrived[slab] |= rise
		fb := slab << 6
		c := int32(s.cycle)
		for m := rise; m != 0; m &= m - 1 {
			s.firstOneAt[fb+bits.TrailingZeros64(m)] = c
		}
	}
}

// settleWave drains the pending comb gates in level order.  A gate only
// ever enqueues gates at strictly higher levels, so each gate is
// evaluated at most once per wave; because bit positions never
// interact, the word-slice pass settles every lane exactly as its own
// scalar topological pass would.
func (s *Sim) settleWave() {
	W := s.words
	out := s.evalBuf
	for lvl := 0; s.pending > 0 && lvl < len(s.buckets); lvl++ {
		b := s.buckets[lvl]
		if len(b) == 0 {
			continue
		}
		s.buckets[lvl] = b[:0]
		for _, gi := range b {
			s.queued[gi] = false
			s.pending--
			s.eval(gi, out)
			net := circuit.Net(int(gi) + 2)
			base := int(net) * W
			cur := s.vals[base : base+W : base+W]
			for w := range out {
				if out[w] != cur[w] {
					s.setWords(net, out)
					break
				}
			}
		}
	}
}

// SetActiveLanes restricts accounting (and input broadcast) to the
// given per-word lane masks — the start of a pack race.  Call it
// immediately after Reset, before driving any input; lanes outside the
// mask stay at the quiescent power-on baseline and record nothing.
// Words beyond len(mask) are cleared.
func (s *Sim) SetActiveLanes(mask []uint64) {
	for w := range s.account {
		if w < len(mask) {
			s.account[w] = mask[w]
		} else {
			s.account[w] = 0
		}
	}
}

// SetInputWords drives an external input pin with a per-lane slab; bits
// outside the active mask are ignored and words beyond len(ws) are
// driven to 0.  The change settles immediately in the current cycle,
// with each changed lane accounted exactly as a scalar SetInput would
// have been.
func (s *Sim) SetInputWords(net circuit.Net, ws []uint64) {
	gi := int(net) - 2
	if gi < 0 || gi >= len(s.kinds) || s.kinds[gi] != circuit.KindInput {
		panic(fmt.Sprintf("lanes: SetInput on non-input net %d", net))
	}
	W := s.words
	buf := s.inBuf
	for w := 0; w < W; w++ {
		var v uint64
		if w < len(ws) {
			v = ws[w]
		}
		buf[w] = v & s.account[w]
	}
	base := int(net) * W
	cur := s.vals[base : base+W : base+W]
	for w := range buf {
		if cur[w] != buf[w] {
			s.setWords(net, buf)
			s.settleWave()
			return
		}
	}
}

// SetInputWord drives word 0 of an input pin (lanes 0–63) and clears
// any higher words — the single-word convenience the oracle's per-lane
// scripts use.
func (s *Sim) SetInputWord(net circuit.Net, w uint64) {
	s.oneBuf[0] = w
	s.SetInputWords(net, s.oneBuf[:1])
}

// SetInput drives an input pin in every active lane — the scalar
// Backend contract, under which all lanes run in lockstep.
func (s *Sim) SetInput(net circuit.Net, v bool) {
	var word uint64
	if v {
		word = ^uint64(0)
	}
	buf := s.bcastBuf
	for w := range buf {
		buf[w] = word
	}
	s.SetInputWords(net, buf)
}

// SetInputName drives an input pin by name.
func (s *Sim) SetInputName(name string, v bool) error {
	net, err := s.nl.InputNet(name)
	if err != nil {
		return err
	}
	s.SetInput(net, v)
	return nil
}

// step advances one clock cycle.  The edge first snapshots every armed
// slot's per-lane flip slab (enable ∧ D≠Q) from pre-edge values — the
// snapshot makes the sampling synchronous even along direct Q→D chains
// — then applies the flips and settles the triggered wave.  Clock
// accounting covers every enabled flip-flop of every accounted lane,
// armed or not, exactly like the reference.
func (s *Sim) step() {
	W := s.words
	for w := 0; w < W; w++ {
		wl := w << 6
		for m := s.account[w]; m != 0; m &= m - 1 {
			l := wl + bits.TrailingZeros64(m)
			s.ffClocked[l] += s.plain + s.enabledE[l]
		}
	}
	s.cycle++
	if len(s.armedList) == 0 {
		return
	}
	s.scratchSlots = s.scratchSlots[:0]
	s.scratchFlips = s.scratchFlips[:0]
	for _, slot := range s.armedList {
		d := int(s.ins[s.ffGate[slot]][0]) * W
		fb := int(slot) * W
		s.scratchSlots = append(s.scratchSlots, slot)
		if en := s.ffEn[slot]; en >= 0 {
			eb := int(en) * W
			for w := 0; w < W; w++ {
				s.scratchFlips = append(s.scratchFlips, s.vals[eb+w]&(s.vals[d+w]^s.ffState[fb+w]))
			}
		} else {
			for w := 0; w < W; w++ {
				s.scratchFlips = append(s.scratchFlips, s.vals[d+w]^s.ffState[fb+w])
			}
		}
	}
	q := s.qBuf
	for i, slot := range s.scratchSlots {
		fb := int(slot) * W
		flips := s.scratchFlips[i*W : i*W+W]
		for w := 0; w < W; w++ {
			q[w] = s.ffState[fb+w] ^ flips[w]
			s.ffState[fb+w] = q[w]
		}
		s.rearm(slot)
		s.setWords(circuit.Net(int(s.ffGate[slot])+2), q)
	}
	s.settleWave()
}

// Step advances the simulation by one clock cycle.
func (s *Sim) Step() { s.step() }

// Run advances k cycles, fast-forwarding through quiescence: with no
// armed flip-flop nothing can change until an input does, so the
// remaining cycles collapse into per-lane clock accounting.
func (s *Sim) Run(k int) {
	for i := 0; i < k; i++ {
		if len(s.armedList) == 0 {
			s.forward(k - i)
			return
		}
		s.step()
	}
}

// forward advances k quiescent cycles: clock accounting only, for every
// accounted lane.
func (s *Sim) forward(k int) {
	for w := 0; w < s.words; w++ {
		wl := w << 6
		for m := s.account[w]; m != 0; m &= m - 1 {
			l := wl + bits.TrailingZeros64(m)
			s.ffClocked[l] += uint64(k) * (s.plain + s.enabledE[l])
		}
	}
	s.cycle += k
}

// RunUntil steps until net first carries a 1 in lane 0 and returns the
// arrival time, or temporal.Never if it has not arrived after
// maxCycles — the scalar Backend contract.  A quiescent circuit
// advances straight to the horizon.
func (s *Sim) RunUntil(net circuit.Net, maxCycles int) temporal.Time {
	for !s.laneArrived(net, 0) && s.cycle < maxCycles {
		if len(s.armedList) == 0 {
			s.forward(maxCycles - s.cycle)
			break
		}
		s.step()
	}
	return s.LaneArrival(net, 0)
}

// laneArrived reports whether net has carried a 1 in the given lane.
func (s *Sim) laneArrived(net circuit.Net, lane int) bool {
	slab := int(net)*s.words + lane>>6
	return (s.baseVals[slab]|s.arrived[slab])>>uint(lane&63)&1 != 0
}

// RaceUntil runs the pack race: it steps until every active lane's copy
// of net has fired or maxCycles is reached, freezing each lane at its
// own stop cycle — the cycle its scalar RunUntil would have returned
// at.  A frozen lane stops accumulating toggles, arrivals, and clock
// cycles while the shared word simulation keeps stepping for the rest.
// LaneCycle, LaneArrival, and LaneActivity read the per-lane outcomes
// afterwards.
func (s *Sim) RaceUntil(net circuit.Net, maxCycles int) {
	W := s.words
	racing := s.racingBuf
	copy(racing, s.account)
	nb := int(net) * W
	remaining := uint64(0)
	for w := 0; w < W; w++ {
		if arr := (s.baseVals[nb+w] | s.arrived[nb+w]) & racing[w]; arr != 0 {
			s.freezeWord(w, arr)
			racing[w] &^= arr
		}
		remaining |= racing[w]
	}
	for remaining != 0 && s.cycle < maxCycles {
		if len(s.armedList) == 0 {
			// Quiescent in every lane: no remaining output can ever fire,
			// so the unfinished lanes coast to the bound on clock
			// accounting alone.
			k := maxCycles - s.cycle
			for w := 0; w < W; w++ {
				wl := w << 6
				for m := racing[w]; m != 0; m &= m - 1 {
					l := wl + bits.TrailingZeros64(m)
					s.ffClocked[l] += uint64(k) * (s.plain + s.enabledE[l])
				}
			}
			s.cycle = maxCycles
			break
		}
		s.step()
		remaining = 0
		for w := 0; w < W; w++ {
			if arr := s.arrived[nb+w] & racing[w]; arr != 0 {
				s.freezeWord(w, arr)
				racing[w] &^= arr
			}
			remaining |= racing[w]
		}
	}
	// Lanes that never fired stop at the bound, like a scalar RunUntil
	// returning Never at maxCycles.
	for w := 0; w < W; w++ {
		wl := w << 6
		for m := racing[w]; m != 0; m &= m - 1 {
			s.laneCycle[wl+bits.TrailingZeros64(m)] = s.cycle
		}
		s.account[w] &^= racing[w]
	}
}

// freezeWord retires the given lanes of one word at the current cycle
// and masks them out of all further accounting.
func (s *Sim) freezeWord(w int, arr uint64) {
	wl := w << 6
	for m := arr; m != 0; m &= m - 1 {
		s.laneCycle[wl+bits.TrailingZeros64(m)] = s.cycle
	}
	s.account[w] &^= arr
}

// Cycle returns the number of Steps taken so far (fast-forwarded
// quiescent cycles included).
func (s *Sim) Cycle() int { return s.cycle }

// LaneCycle returns the cycle the given lane's RaceUntil stopped at.
func (s *Sim) LaneCycle(lane int) int { return s.laneCycle[lane] }

// Value returns the current settled value of a net in lane 0.
func (s *Sim) Value(net circuit.Net) bool { return s.vals[int(net)*s.words]&1 != 0 }

// LaneValue returns the current settled value of a net in the given lane.
func (s *Sim) LaneValue(net circuit.Net, lane int) bool {
	return s.vals[int(net)*s.words+lane>>6]>>uint(lane&63)&1 != 0
}

// Arrival returns the cycle at which the net first carried a 1 in lane
// 0, or temporal.Never.
func (s *Sim) Arrival(net circuit.Net) temporal.Time { return s.LaneArrival(net, 0) }

// LaneArrival returns the cycle at which the net first carried a 1 in
// the given lane, or temporal.Never if it had not fired when the lane
// froze.
func (s *Sim) LaneArrival(net circuit.Net, lane int) temporal.Time {
	slab := int(net)*s.words + lane>>6
	bit := uint64(1) << uint(lane&63)
	if s.baseVals[slab]&bit != 0 {
		return 0
	}
	if s.arrived[slab]&bit != 0 {
		return temporal.Time(s.firstOneAt[int(net)*s.width+lane])
	}
	return temporal.Never
}

// Toggles returns the cumulative toggle count of a net in lane 0.
func (s *Sim) Toggles(net circuit.Net) uint64 { return s.toggles0[net] }

// Activity summarizes lane 0 of the simulation so far — the scalar
// Backend contract, using the shared cycle counter.
func (s *Sim) Activity() circuit.Activity { return s.activity(0, s.cycle) }

// LaneActivity summarizes one lane of a finished pack race, as of the
// cycle the lane froze at.  It is byte-identical to the Activity a solo
// scalar race of that lane's candidate would have reported.
func (s *Sim) LaneActivity(lane int) circuit.Activity {
	return s.activity(lane, s.laneCycle[lane])
}

func (s *Sim) activity(lane, cycles int) circuit.Activity {
	a := circuit.Activity{
		Cycles:          cycles,
		GateCount:       s.nl.CountByKind(),
		FanInCount:      s.nl.FanIn(),
		NetToggles:      make(map[circuit.Kind]uint64),
		LoadToggles:     make(map[circuit.Kind]uint64),
		FFClockedCycles: s.ffClocked[lane],
		NumDFFs:         s.nl.NumDFFs(),
	}
	for _, k := range circuit.Kinds() {
		if t := s.netTog[k][lane]; t != 0 {
			a.NetToggles[k] = t
		}
		if t := s.loadTog[k][lane]; t != 0 {
			a.LoadToggles[k] = t
		}
	}
	return a
}

// The bit-parallel engine satisfies the shared backend contract.
var _ circuit.Backend = (*Sim)(nil)
