package circuit

// Activity is the post-simulation report the energy model consumes.  It is
// the software analogue of the Modelsim toggle file the paper feeds to
// Primetime: enough per-kind structure to apply per-cell capacitances, and
// the clocked-cycle total that drives the α=1 clock-network term of Eq. 3.
type Activity struct {
	// Cycles is the number of clock cycles simulated.
	Cycles int
	// GateCount is the number of cells of each kind in the netlist
	// (structure, not activity).
	GateCount map[Kind]int
	// FanInCount is the total number of input pins per cell kind; each
	// pin loads the net driving it with that cell's input capacitance.
	FanInCount map[Kind]int
	// NetToggles is the total number of 0↔1 transitions summed over all
	// nets, split by the kind of the cell driving the net (the toggling
	// net charges/discharges its own output plus its fan-out loads).
	NetToggles map[Kind]uint64
	// LoadToggles is the toggle count weighted by fan-out: for each
	// toggling net, the number of input pins it drives, split by the
	// kind of each *driven* pin.  Σ over kinds of
	// LoadToggles[k]·Cin(k) is the switched load capacitance.
	LoadToggles map[Kind]uint64
	// FFClockedCycles is Σ over cycles of the number of flip-flops whose
	// clock was active that cycle.  Without gating this is
	// NumDFFs·Cycles; clock gating reduces it (Section 4.3).
	FFClockedCycles uint64
	// NumDFFs is the flip-flop count, for convenience.
	NumDFFs int
}

// Activity summarizes the simulation so far.
func (s *Simulator) Activity() Activity {
	a := Activity{
		Cycles:          s.cycle,
		GateCount:       s.n.CountByKind(),
		FanInCount:      s.n.FanIn(),
		NetToggles:      make(map[Kind]uint64, numKinds),
		LoadToggles:     make(map[Kind]uint64, numKinds),
		FFClockedCycles: s.ffClockedCycles,
		NumDFFs:         s.n.NumDFFs(),
	}
	// fanOutByKind[net][kind] would be large; instead walk gates once,
	// attributing each gate's input-pin load to the driving net's toggle
	// count.
	for _, g := range s.n.gates {
		for _, in := range g.in {
			if t := s.toggles[in]; t != 0 {
				a.LoadToggles[g.kind] += t
			}
		}
	}
	for i, g := range s.n.gates {
		if t := s.toggles[i+2]; t != 0 {
			a.NetToggles[g.kind] += t
		}
	}
	return a
}

// TotalNetToggles returns the sum of all net toggles regardless of kind.
func (a Activity) TotalNetToggles() uint64 {
	var t uint64
	for _, v := range a.NetToggles {
		t += v
	}
	return t
}
