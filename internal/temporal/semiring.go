package temporal

// This file states the algebraic structure Race Logic computes over.  The
// OR-type race evaluates expressions in the tropical (min, +) semiring and
// the AND-type race evaluates the (max, +) counterpart.  Exposing the two
// semirings as first-class values lets the DAG solver, the reference DP
// and the circuit compiler all be written once and instantiated for either
// direction, and gives the property tests a single object whose laws they
// can check.

// Semiring is a commutative semiring over Time.  Combine is the "choice"
// operator (min for shortest path, max for longest path) and Extend is the
// "sequence" operator (addition of edge delays).  Zero is the identity of
// Combine and annihilator of Extend; One is the identity of Extend.
type Semiring struct {
	// Name identifies the semiring in error messages and test output.
	Name string
	// Combine folds two alternative path scores into one.
	Combine func(a, b Time) Time
	// Extend accumulates an edge weight onto a path score.
	Extend func(a, b Time) Time
	// Zero is the identity of Combine: Never for min, 0-paths-exist
	// sentinel for max (see MaxPlus).
	Zero Time
	// One is the identity of Extend (always 0: a zero-length delay).
	One Time
}

// MinPlus is the tropical shortest-path semiring: Combine = min with
// identity Never (+∞), Extend = saturating + with identity 0.  This is the
// algebra of the OR-type race.
var MinPlus = Semiring{
	Name:    "min-plus",
	Combine: Min,
	Extend:  Time.Add,
	Zero:    Never,
	One:     0,
}

// MaxPlus is the longest-path semiring of the AND-type race: Combine = max,
// Extend = saturating +.  Its Zero is Never used as "-∞ / no path"
// sentinel: Max treats Never as absorbing in hardware (an AND gate with a
// dead input never fires), so MaxPlus.Combine special-cases it instead.
var MaxPlus = Semiring{
	Name: "max-plus",
	Combine: func(a, b Time) Time {
		// Never means "no path" here (the -∞ of max-plus), not +∞,
		// so it must lose to any finite time rather than win.
		if a == Never {
			return b
		}
		if b == Never {
			return a
		}
		return Max(a, b)
	},
	Extend: Time.Add,
	Zero:   Never,
	One:    0,
}

// CombineOf folds any number of alternatives, returning the semiring Zero
// for an empty list.
func (s Semiring) CombineOf(ts ...Time) Time {
	acc := s.Zero
	for _, t := range ts {
		acc = s.Combine(acc, t)
	}
	return acc
}
