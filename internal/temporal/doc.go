// Package temporal defines the value domain of Race Logic.
//
// In Race Logic (Madhavan, Sherwood, Strukov — ISCA 2014) a number n is not
// represented as a bit pattern but as the moment, n clock cycles after the
// start of a computation, at which a rising edge appears on a wire.  Under
// that encoding three operations become trivial hardware:
//
//	min(a, b) — an OR gate (the first arriving edge wins)
//	max(a, b) — an AND gate (the last arriving edge wins)
//	a + c     — a chain of c D flip-flops (delay by c cycles)
//
// This package models that domain in software: the Time type with a
// distinguished +∞ value (Never — the edge never arrives, i.e. a missing
// DAG edge), saturating addition, Min/Max, and comparison helpers.  The
// (min, +) fragment forms the tropical semiring; the laws are exercised by
// property tests and the rest of the repository treats this package as the
// ground truth for what the gate-level simulator must agree with.
package temporal
