package temporal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddBasic(t *testing.T) {
	cases := []struct {
		a, b, want Time
	}{
		{0, 0, 0},
		{1, 2, 3},
		{5, 0, 5},
		{Never, 3, Never},
		{3, Never, Never},
		{Never, Never, Never},
		{-2, 5, 3},
		{math.MaxInt64 - 1, 1, Never}, // lands on sentinel → saturates
		{math.MaxInt64 - 2, 5, Never}, // overflow → saturates
	}
	for _, c := range cases {
		if got := c.a.Add(c.b); got != c.want {
			t.Errorf("(%v).Add(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubBasic(t *testing.T) {
	cases := []struct {
		a, b, want Time
	}{
		{5, 2, 3},
		{2, 5, -3},
		{Never, 10, Never},
		{10, Never, minTime},
	}
	for _, c := range cases {
		if got := c.a.Sub(c.b); got != c.want {
			t.Errorf("(%v).Sub(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min of finite values wrong")
	}
	if Min(Never, 7) != 7 || Min(7, Never) != 7 {
		t.Error("Min must treat Never as identity")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max of finite values wrong")
	}
	if Max(Never, 7) != Never || Max(7, Never) != Never {
		t.Error("Max must treat Never as absorbing (AND gate never fires)")
	}
}

func TestMinOfMaxOf(t *testing.T) {
	if MinOf() != Never {
		t.Error("MinOf() must be Never (identity of min)")
	}
	if MinOf(4, 2, 9) != 2 {
		t.Error("MinOf picks wrong element")
	}
	if MaxOf() != 0 {
		t.Error("MaxOf() must be 0")
	}
	if MaxOf(4, 2, 9) != 9 {
		t.Error("MaxOf picks wrong element")
	}
	if MaxOf(4, Never, 1) != Never {
		t.Error("MaxOf with Never input must be Never")
	}
}

func TestIsNeverIsFinite(t *testing.T) {
	if !Never.IsNever() || Never.IsFinite() {
		t.Error("Never misclassified")
	}
	if Time(0).IsNever() || !Time(0).IsFinite() {
		t.Error("0 misclassified")
	}
}

func TestCyclesPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Never", func() { Never.Cycles() })
	mustPanic("negative", func() { Time(-1).Cycles() })
	if Time(17).Cycles() != 17 {
		t.Error("Cycles(17) wrong")
	}
}

func TestString(t *testing.T) {
	if Never.String() != "∞" {
		t.Errorf("Never.String() = %q", Never.String())
	}
	if Time(42).String() != "42" {
		t.Errorf("Time(42).String() = %q", Time(42).String())
	}
}

// smallTime narrows arbitrary int64s into a range where addition cannot
// overflow, plus an occasional Never, so the property tests exercise both
// the finite algebra and the sentinel handling.
func smallTime(raw int64) Time {
	if raw%7 == 0 {
		return Never
	}
	v := raw % 1_000_000
	if v < 0 {
		v = -v
	}
	return Time(v)
}

func TestPropertyAddCommutativeAssociative(t *testing.T) {
	comm := func(x, y int64) bool {
		a, b := smallTime(x), smallTime(y)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error("Add not commutative:", err)
	}
	assoc := func(x, y, z int64) bool {
		a, b, c := smallTime(x), smallTime(y), smallTime(z)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("Add not associative:", err)
	}
}

func TestPropertyTropicalSemiringLaws(t *testing.T) {
	for _, s := range []Semiring{MinPlus, MaxPlus} {
		s := s
		// Combine is commutative, associative, idempotent with identity Zero.
		law := func(x, y, z int64) bool {
			a, b, c := smallTime(x), smallTime(y), smallTime(z)
			if s.Combine(a, b) != s.Combine(b, a) {
				return false
			}
			if s.Combine(s.Combine(a, b), c) != s.Combine(a, s.Combine(b, c)) {
				return false
			}
			if s.Combine(a, a) != a {
				return false
			}
			if s.Combine(a, s.Zero) != a {
				return false
			}
			return true
		}
		if err := quick.Check(law, nil); err != nil {
			t.Errorf("%s: Combine laws violated: %v", s.Name, err)
		}
		// Extend distributes over Combine (on finite values for max-plus:
		// Never is a "no path" marker there, not a numeric -∞, so the
		// distributive law is only claimed on the finite fragment).
		dist := func(x, y, z int64) bool {
			a, b, c := smallTime(x), smallTime(y), smallTime(z)
			if s.Name == "max-plus" && (a == Never || b == Never || c == Never) {
				return true
			}
			lhs := s.Extend(c, s.Combine(a, b))
			rhs := s.Combine(s.Extend(c, a), s.Extend(c, b))
			return lhs == rhs
		}
		if err := quick.Check(dist, nil); err != nil {
			t.Errorf("%s: distributivity violated: %v", s.Name, err)
		}
		// Zero annihilates Extend in min-plus (Never + x = Never).
		if s.Name == "min-plus" {
			ann := func(x int64) bool {
				a := smallTime(x)
				return s.Extend(s.Zero, a) == s.Zero
			}
			if err := quick.Check(ann, nil); err != nil {
				t.Errorf("%s: Zero does not annihilate: %v", s.Name, err)
			}
		}
	}
}

func TestCombineOf(t *testing.T) {
	if MinPlus.CombineOf() != Never {
		t.Error("empty min-plus CombineOf should be Never")
	}
	if MinPlus.CombineOf(9, 4, 6) != 4 {
		t.Error("min-plus CombineOf wrong")
	}
	if MaxPlus.CombineOf(9, 4, 6) != 9 {
		t.Error("max-plus CombineOf wrong")
	}
	if MaxPlus.CombineOf(Never, 5) != 5 {
		t.Error("max-plus must treat Never as no-path, losing to finite")
	}
}

func TestBeforeAfter(t *testing.T) {
	if !Time(2).Before(3) || Time(3).Before(3) {
		t.Error("Before wrong")
	}
	if !Never.After(1) || Time(1).After(Never) {
		t.Error("After/Never ordering wrong")
	}
}
