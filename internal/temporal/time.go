package temporal

import (
	"fmt"
	"math"
)

// Time is a value in the Race Logic domain: a count of clock cycles from
// the start of a computation until a rising edge is observed.  The zero
// value is a valid time (an edge at cycle 0, i.e. an input node).
//
// Time is a signed 64-bit count so that intermediate arithmetic in score
// matrix transformations (which may pass through negative log-odds scores)
// can reuse the same type; a negative Time never appears on a wire.
type Time int64

// Never is the distinguished +∞: the edge never arrives.  It represents a
// missing edge in a DAG and is the identity of Min and the absorbing
// element of saturating addition.
const Never Time = math.MaxInt64

// minTime is the most negative representable Time, used as the saturation
// floor for subtraction.
const minTime Time = math.MinInt64

// IsNever reports whether t is the +∞ value.
func (t Time) IsNever() bool { return t == Never }

// IsFinite reports whether t is an ordinary (non-Never) time.
func (t Time) IsFinite() bool { return t != Never }

// Add returns t + d with saturation at Never.  If either operand is Never
// the result is Never: a signal that never arrives stays unarrived no
// matter how much extra delay is inserted after it.  Finite additions that
// would overflow also saturate to Never, so chained delays can never wrap
// around into a small (and therefore "winning") value.
func (t Time) Add(d Time) Time {
	if t == Never || d == Never {
		return Never
	}
	s := t + d
	// Two's-complement overflow check: if the operands share a sign and
	// the sum's sign differs, the addition wrapped.
	if (t > 0 && d > 0 && s <= 0) || (t < 0 && d < 0 && s >= 0) {
		if t > 0 {
			return Never
		}
		return minTime
	}
	if s == Never { // landed exactly on the sentinel
		return Never
	}
	return s
}

// Sub returns t - d with the same saturation rules as Add.  Never minus
// anything finite is still Never.
func (t Time) Sub(d Time) Time {
	if t == Never {
		return Never
	}
	if d == Never {
		return minTime
	}
	return t.Add(-d)
}

// Min returns the earlier of two times — the OR gate of Race Logic.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of two times — the AND gate of Race Logic.  If
// either edge never arrives the AND gate never fires.
func Max(a, b Time) Time {
	if a == Never || b == Never {
		return Never
	}
	if a > b {
		return a
	}
	return b
}

// MinOf returns the earliest of any number of times; with no arguments it
// returns Never (the identity of Min).
func MinOf(ts ...Time) Time {
	m := Never
	for _, t := range ts {
		m = Min(m, t)
	}
	return m
}

// MaxOf returns the latest of any number of times; with no arguments it
// returns 0 (the identity of Max over arrival times).
func MaxOf(ts ...Time) Time {
	var m Time
	for i, t := range ts {
		if i == 0 {
			m = t
			continue
		}
		m = Max(m, t)
	}
	if len(ts) == 0 {
		return 0
	}
	return m
}

// Before reports whether t arrives strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t arrives strictly later than u.  Never is after
// every finite time.
func (t Time) After(u Time) bool { return t > u }

// Cycles converts t to a plain int for indexing simulation traces.  It
// panics on Never or negative values: those are programming errors at the
// point where a race result is consumed, not data-dependent conditions.
func (t Time) Cycles() int {
	if t == Never {
		panic("temporal: Cycles called on Never")
	}
	if t < 0 {
		panic(fmt.Sprintf("temporal: Cycles called on negative time %d", int64(t)))
	}
	return int(t)
}

// String renders finite times as their cycle count and Never as "∞".
func (t Time) String() string {
	if t == Never {
		return "∞"
	}
	return fmt.Sprintf("%d", int64(t))
}
