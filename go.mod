module racelogic

go 1.22
