module racelogic

go 1.21
