package racelogic_test

import (
	"testing"

	"racelogic"
	"racelogic/internal/seqgen"
)

// TestSearchMatchesSerialAlign verifies the batch pipeline against the
// single-pair public API: every reported score must equal what a
// dedicated engine computes for that pair.
func TestSearchMatchesSerialAlign(t *testing.T) {
	g := seqgen.NewDNA(21)
	query := g.Random(9)
	var db []string
	for _, n := range []int{6, 9, 13} {
		db = append(db, g.Database(8, n)...)
	}
	rep, err := racelogic.Search(query, db, racelogic.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != len(db) {
		t.Fatalf("unthresholded search matched %d of %d", rep.Matched, len(db))
	}
	if rep.Buckets != 3 {
		t.Errorf("got %d buckets, want 3", rep.Buckets)
	}
	for _, r := range rep.Results {
		e, err := racelogic.NewDNAEngine(len(query), len(db[r.Index]))
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Align(query, db[r.Index])
		if err != nil {
			t.Fatal(err)
		}
		if a.Score != r.Score {
			t.Errorf("entry %d: search score %d, serial Align %d", r.Index, r.Score, a.Score)
		}
		if a.Metrics.Cycles != r.Metrics.Cycles {
			t.Errorf("entry %d: search cycles %d, serial %d", r.Index, r.Metrics.Cycles, a.Metrics.Cycles)
		}
	}
}

// TestSearchProteinMatrix runs the generalized-array path end to end.
func TestSearchProteinMatrix(t *testing.T) {
	g := seqgen.NewProtein(22)
	query := g.Random(4)
	db := g.Database(5, 4)
	rep, err := racelogic.Search(query, db, racelogic.WithMatrix("BLOSUM62"), racelogic.WithTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	e, err := racelogic.NewProteinEngine(len(query), len(db[rep.Results[0].Index]), "BLOSUM62")
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Align(query, db[rep.Results[0].Index])
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != rep.Results[0].Score {
		t.Errorf("top match: search score %d, serial ProteinEngine %d", rep.Results[0].Score, a.Score)
	}
	if _, err := racelogic.Search(query, db, racelogic.WithMatrix("BLOSUM80")); err == nil {
		t.Error("unknown matrix must error")
	}
	if _, err := racelogic.Search(query, db,
		racelogic.WithMatrix("BLOSUM62"), racelogic.WithClockGating(2)); err == nil {
		t.Error("gating+matrix must error rather than silently running ungated")
	}
}

// TestSearchOptionValidation pins the search-only option guards and the
// override-to-off sentinels: non-positive WithTopK/WithWorkers and a
// negative WithThreshold are how a Search call disables a Database-level
// default, so they must be accepted, not rejected.
func TestSearchOptionValidation(t *testing.T) {
	if _, err := racelogic.Search("ACGT", nil, racelogic.WithMatrix("")); err == nil {
		t.Error("WithMatrix(\"\") must error")
	}
	g := seqgen.NewDNA(25)
	entries := g.Database(6, 4)
	db, err := racelogic.NewDatabase(entries,
		racelogic.WithThreshold(2), racelogic.WithTopK(1), racelogic.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Search("ACGT",
		racelogic.WithThreshold(-1), racelogic.WithTopK(0), racelogic.WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 0 || rep.Matched != len(entries) {
		t.Errorf("WithThreshold(-1) must disable the default pre-filter: %+v", rep)
	}
	if len(rep.Results) != len(entries) {
		t.Errorf("WithTopK(0) must lift the default truncation: got %d results, want %d",
			len(rep.Results), len(entries))
	}
}

// TestGatingWithThreshold pins the combination engine.go used to reject:
// a gated, thresholded engine must make exactly the same accept/reject
// decisions — and report the same scores — as the plain thresholded one,
// because gating never changes arrival times.
func TestGatingWithThreshold(t *testing.T) {
	g := seqgen.NewDNA(23)
	const n, limit = 10, 12
	plain, err := racelogic.NewDNAEngine(n, n, racelogic.WithThreshold(limit))
	if err != nil {
		t.Fatal(err)
	}
	gated, err := racelogic.NewDNAEngine(n, n,
		racelogic.WithThreshold(limit), racelogic.WithClockGating(4))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		p, q := g.RandomPair(n)
		if trial == 0 {
			p, q = g.BestCase(n) // must be accepted
		}
		if trial == 1 {
			p, q = g.WorstCase(n) // must be rejected
		}
		pa, err := plain.Align(p, q)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := gated.Align(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Found != ga.Found || pa.Score != ga.Score {
			t.Errorf("%s vs %s: plain (found %v, score %d) != gated (found %v, score %d)",
				p, q, pa.Found, pa.Score, ga.Found, ga.Score)
		}
		if pa.Metrics.Cycles != ga.Metrics.Cycles {
			t.Errorf("%s vs %s: plain %d cycles, gated %d", p, q, pa.Metrics.Cycles, ga.Metrics.Cycles)
		}
	}

	// Gated search end to end, thresholded.
	db := g.Database(12, n)
	rep, err := racelogic.Search(g.Random(n), db,
		racelogic.WithThreshold(limit), racelogic.WithClockGating(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != len(db) {
		t.Errorf("scanned %d, want %d", rep.Scanned, len(db))
	}
}

// TestThresholdBoundary pins the cut-off contract at its edge: a score
// of exactly threshold is accepted, a score of exactly threshold+1 —
// which fires in the very cycle the abandon decision is made — is not.
func TestThresholdBoundary(t *testing.T) {
	// "AA" vs "TT" scores 4 (pure indels); thresholds 3 and 4 straddle it.
	reject, err := racelogic.NewDNAEngine(2, 2, racelogic.WithThreshold(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := reject.Align("AA", "TT")
	if err != nil {
		t.Fatal(err)
	}
	if a.Found {
		t.Errorf("score 4 must be rejected under threshold 3, got found score %d", a.Score)
	}
	accept, err := racelogic.NewDNAEngine(2, 2, racelogic.WithThreshold(4))
	if err != nil {
		t.Fatal(err)
	}
	a, err = accept.Align("AA", "TT")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Found || a.Score != 4 {
		t.Errorf("score 4 must be accepted under threshold 4, got found=%v score %d", a.Found, a.Score)
	}
}

// TestSearchRepeatability races the same search twice on the same
// process and demands identical reports — the engine-reuse reset path
// must leave no state behind.
func TestSearchRepeatability(t *testing.T) {
	g := seqgen.NewDNA(24)
	query := g.Random(8)
	db := g.Database(10, 8)
	first, err := racelogic.Search(query, db, racelogic.WithThreshold(10))
	if err != nil {
		t.Fatal(err)
	}
	second, err := racelogic.Search(query, db, racelogic.WithThreshold(10))
	if err != nil {
		t.Fatal(err)
	}
	if first.Matched != second.Matched || first.Rejected != second.Rejected ||
		first.TotalCycles != second.TotalCycles || first.TotalEnergyJ != second.TotalEnergyJ {
		t.Errorf("reports differ across identical searches:\n first %+v\nsecond %+v", first, second)
	}
}
