package racelogic

import (
	"racelogic/internal/dag"
	"racelogic/internal/race"
	"racelogic/internal/temporal"
)

// graphImpl adapts the internal DAG representation to the public Graph
// API, keeping internal types out of exported signatures.
type graphImpl struct {
	g *dag.Graph
}

func newGraphImpl() *graphImpl { return &graphImpl{g: dag.New()} }

func (gi *graphImpl) addNode(name string) int { return int(gi.g.AddNode(name)) }

func (gi *graphImpl) addEdge(from, to int, weight int64) error {
	w := temporal.Time(weight)
	if weight == Never {
		w = temporal.Never
	}
	return gi.g.AddEdge(dag.NodeID(from), dag.NodeID(to), w)
}

func (gi *graphImpl) solve(dst int, gt race.GateType) (int64, error) {
	s, err := race.FromDAG(gi.g, gt)
	if err != nil {
		return Never, err
	}
	res, err := s.Solve(dag.NodeID(dst))
	if err != nil {
		return Never, err
	}
	t := res.Arrival[dst]
	if t == temporal.Never {
		return Never, nil
	}
	return int64(t), nil
}
