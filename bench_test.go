package racelogic

// This file is the benchmark harness: one testing.B benchmark per paper
// table/figure, each regenerating the artifact through internal/eval on
// a reduced sweep (cmd/racebench runs the full paper grids), plus the
// batch-search benchmarks proving engine reuse beats a build-per-pair
// loop.  Reported custom metrics carry the headline quantities so
// `go test -bench . -benchmem` prints the same numbers the tables hold.

import (
	"fmt"
	"testing"

	"racelogic/internal/align"
	"racelogic/internal/async"
	"racelogic/internal/eval"
	"racelogic/internal/score"
	"racelogic/internal/seqgen"
	"racelogic/internal/systolic"
	"racelogic/internal/tech"
)

// benchNs keeps per-iteration work bounded; the shapes (quadratic area,
// cubic energy, crossovers) are already visible on this grid.
var benchNs = []int{5, 10, 20, 30}

func benchLib(b *testing.B) *tech.Library {
	b.Helper()
	return tech.AMIS()
}

// BenchmarkFig5Area regenerates Fig. 5a/5d (area vs N).
func BenchmarkFig5Area(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig5Area(lib, benchNs)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[0].Y[last], "race-area-um2@N30")
		b.ReportMetric(fig.Series[1].Y[last], "systolic-area-um2@N30")
	}
}

// BenchmarkFig5Latency regenerates Fig. 5b/5e (latency vs N).
func BenchmarkFig5Latency(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig5Latency(lib, benchNs)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[0].Y[last], "race-best-ns@N30")
		b.ReportMetric(fig.Series[2].Y[last], "systolic-ns@N30")
	}
}

// BenchmarkFig5Energy regenerates Fig. 5c/5f (energy vs N, six series).
func BenchmarkFig5Energy(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig5Energy(lib, benchNs)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[1].Y[last]*1e12, "race-worst-pJ@N30")
		b.ReportMetric(fig.Series[2].Y[last]*1e12, "systolic-pJ@N30")
	}
}

// BenchmarkEq5Fit regenerates the Eq. 5 fitted coefficients.
func BenchmarkEq5Fit(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Eq5Fit(lib, benchNs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Y[0], "best-N3-coef-pJ")
		b.ReportMetric(fig.Series[1].Y[0], "worst-N3-coef-pJ")
	}
}

// BenchmarkFig6Wavefront regenerates the Fig. 6 wavefront frames.
func BenchmarkFig6Wavefront(b *testing.B) {
	for i := 0; i < b.N; i++ {
		worst, best, err := eval.Fig6(16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(worst)), "worst-frames")
		b.ReportMetric(float64(len(best)), "best-frames")
	}
}

// BenchmarkEq6Eq7Gating regenerates the Eq. 6 granularity sweep and the
// Eq. 7 optimum.
func BenchmarkEq6Eq7Gating(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.GatingSweep(lib, 16, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lib.OptimalGranularity(16, lib.CellClockCapPF(1)), "eq7-mstar@N16")
		_ = fig
	}
}

// BenchmarkFig9aThroughput regenerates Fig. 9a (throughput/area vs N).
func BenchmarkFig9aThroughput(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig9Throughput(lib, benchNs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Y[0]/fig.Series[2].Y[0], "race-vs-systolic@N5")
	}
}

// BenchmarkFig9bPowerDensity regenerates Fig. 9b (W/cm² vs N).
func BenchmarkFig9bPowerDensity(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig9PowerDensity(lib, benchNs)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[2].Y[last]/fig.Series[0].Y[last], "systolic-over-race@N30")
	}
}

// BenchmarkFig9cEnergyDelay regenerates the Fig. 9c scatter at N = 30.
func BenchmarkFig9cEnergyDelay(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig9EnergyDelay(lib, 30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(fig.Series)), "design-points")
	}
}

// BenchmarkHeadline regenerates the abstract's N = 20 comparison ratios.
func BenchmarkHeadline(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.Headline(lib, 20)
		if err != nil {
			b.Fatal(err)
		}
		y := fig.Series[0].Y
		b.ReportMetric(y[0], "latency-x")
		b.ReportMetric(y[1], "throughput-x")
		b.ReportMetric(y[2], "power-density-x")
		b.ReportMetric(y[4], "energy-gated-x")
	}
}

// BenchmarkEncodingAblation regenerates the Section 5 one-hot vs binary
// cell-cost comparison.
func BenchmarkEncodingAblation(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.EncodingAblation(lib, 3)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[0].Y[last]/fig.Series[1].Y[last], "onehot-over-binary-DFFs")
	}
}

// BenchmarkThresholdStudy regenerates the Section 6 early-termination
// scan comparison.
func BenchmarkThresholdStudy(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		fig, err := eval.ThresholdStudy(lib, 16, 8, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Y[2], "scan-speedup-x")
	}
}

// BenchmarkAlignDNA measures the end-to-end public API on the paper's
// example pair — the per-alignment cost of the whole simulation pipeline.
func BenchmarkAlignDNA(b *testing.B) {
	e, err := NewDNAEngine(7, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Align("ACTGAGA", "GATTCGA"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignProtein measures the generalized-array public API.
func BenchmarkAlignProtein(b *testing.B) {
	e, err := NewProteinEngine(4, 4, "BLOSUM62")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Align("WARD", "DRAW"); err != nil {
			b.Fatal(err)
		}
	}
}

// searchBenchDB builds the shared ≥1k-sequence database for the Search
// benchmarks: one dominant length bucket plus two smaller ones, the shape
// a real fixed-array installation would see.
func searchBenchDB() (query string, db []string) {
	g := seqgen.NewDNA(42)
	query = g.Random(12)
	db = g.Database(900, 12)
	db = append(db, g.Database(62, 10)...)
	db = append(db, g.Database(62, 14)...)
	return query, db
}

// BenchmarkSearchBatch measures the batch pipeline: length-bucketed
// engines compiled once and reset between races.
func BenchmarkSearchBatch(b *testing.B) {
	query, db := searchBenchDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Search(query, db)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.EnginesBuilt), "engines")
	}
}

// BenchmarkSearchBatchThreshold adds the Section 6 pre-filter on top of
// engine reuse: dissimilar entries cost only threshold+1 cycles.
func BenchmarkSearchBatchThreshold(b *testing.B) {
	query, db := searchBenchDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Search(query, db, WithThreshold(14), WithTopK(10))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Rejected), "rejected")
	}
}

// BenchmarkSearchNaive is the loop the pipeline replaces: a fresh
// NewDNAEngine per pair, netlist rebuilt and recompiled every time.
func BenchmarkSearchNaive(b *testing.B) {
	query, db := searchBenchDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, entry := range db {
			e, err := NewDNAEngine(len(query), len(entry))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Align(query, entry); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(db)), "engines")
	}
}

// searchBench10k builds the 10k-entry database of the warm-vs-one-shot
// comparison: one dominant length bucket with planted near-matches so the
// seed index has genuine hits to keep.
func searchBench10k() (query string, db []string) {
	g := seqgen.NewDNA(43)
	query = g.Random(12)
	db = g.Database(10000, 12)
	for _, at := range []int{123, 4567, 8910} {
		mut, err := g.Mutate(query, 1, 0, 0)
		if err != nil {
			panic(err)
		}
		db[at] = mut
	}
	return query, db
}

// BenchmarkDatabaseSearchWarm10k measures the persistent subsystem on a
// 10k-entry database: engines pre-compiled and pooled, k-mer seed index
// skipping the entries that share no 8-mer with the query.  Compare
// against BenchmarkSearchOneShot10k for the amortization headline.
func BenchmarkDatabaseSearchWarm10k(b *testing.B) {
	query, db := searchBench10k()
	d, err := NewDatabase(db, WithSeedIndex(8))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Search(query); err != nil { // warm the pools
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := d.Search(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Scanned), "scanned")
		b.ReportMetric(float64(rep.Skipped), "skipped")
	}
}

// BenchmarkDatabaseSearchWarmFullScan10k isolates the engine-pooling win
// from the index win: the warm database races all 10k entries.
func BenchmarkDatabaseSearchWarmFullScan10k(b *testing.B) {
	query, db := searchBench10k()
	d, err := NewDatabase(db)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Search(query); err != nil { // warm the pools
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := d.Search(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.EnginesBuilt), "engines")
	}
}

// BenchmarkSearchOneShot10k is the baseline the Database replaces: the
// one-shot path re-shards the collection and recompiles engines for
// every query, then races all 10k entries.
func BenchmarkSearchOneShot10k(b *testing.B) {
	query, db := searchBench10k()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Search(query, db)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.EnginesBuilt), "engines")
	}
}

// BenchmarkBackendFullScan races an identical warm full-scan workload
// on each simulation backend, then on the lanes backend again at the
// wider 128- and 256-lane pack widths.  The sub-benchmarks are the
// input to scripts/benchcompare.sh, the CI guard that fails when the
// event or lanes backend stops clearing its speedup floor over the
// cycle-accurate reference, or when a wider pack gets slower per
// candidate than the 64-lane default.
func BenchmarkBackendFullScan(b *testing.B) {
	gen := seqgen.NewDNA(77)
	query := gen.Random(24)
	entries := gen.Database(400, 24)
	scan := func(b *testing.B, opts ...Option) {
		d, err := NewDatabase(entries, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Search(query); err != nil { // warm the pools
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := d.Search(query)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.TotalCycles), "cycles")
		}
	}
	for _, backend := range []Backend{BackendCycle, BackendEvent, BackendLanes} {
		b.Run(backend.String(), func(b *testing.B) {
			scan(b, WithBackend(backend))
		})
	}
	for _, width := range []int{128, 256} {
		b.Run(fmt.Sprintf("lanes%d", width), func(b *testing.B) {
			scan(b, WithBackend(BackendLanes), WithLaneWidth(width))
		})
	}
}

// BenchmarkMultiQueryBatch races 16 queries as one SearchBatch call
// versus the same 16 as sequential Search calls, per lane width.  The
// corpus spans three length buckets each too small to fill a wide pack
// from one query, so cross-query coalescing is what reaches the pack
// width; the batch/sequential gap is the payoff of the batch API.
func BenchmarkMultiQueryBatch(b *testing.B) {
	gen := seqgen.NewDNA(78)
	var entries []string
	for _, m := range []int{23, 24, 25} {
		for i := 0; i < 40; i++ {
			entries = append(entries, gen.Random(m))
		}
	}
	queries := make([]string, 16)
	for i := range queries {
		queries[i] = gen.Random(24)
	}
	for _, width := range []int{64, 256} {
		d, err := NewDatabase(entries, WithBackend(BackendLanes), WithLaneWidth(width))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.SearchBatch(queries); err != nil { // warm the pools
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("batch%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.SearchBatch(queries); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sequential%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := d.Search(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSystolicCompare measures the baseline's comparison pipeline.
func BenchmarkSystolicCompare(b *testing.B) {
	arr, err := systolic.New(20, DNAAlphabet)
	if err != nil {
		b.Fatal(err)
	}
	g := seqgen.NewDNA(1)
	p, q := g.RandomPair(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.Compare(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncEditGraph measures the Section 6 clockless simulator on
// an N = 20 alignment race.
func BenchmarkAsyncEditGraph(b *testing.B) {
	g := seqgen.NewDNA(2)
	p, q := g.RandomPair(20)
	eg, _, sink, err := align.EditGraph(p, q, score.DNAShortestInf())
	if err != nil {
		b.Fatal(err)
	}
	c, ids, err := async.FromDAG(eg, async.MinNode)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.Race()
		if res.Arrival[ids[sink]] <= 0 {
			b.Fatal("race failed")
		}
	}
}

// BenchmarkGraphShortestPath measures the public DAG-to-race pipeline on
// a fresh Fig. 3-shaped problem per iteration.
func BenchmarkGraphShortestPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		in0 := g.AddNode("in0")
		a := g.AddNode("a")
		out := g.AddNode("out")
		if err := g.AddEdge(in0, a, 1); err != nil {
			b.Fatal(err)
		}
		if err := g.AddEdge(a, out, 1); err != nil {
			b.Fatal(err)
		}
		if err := g.AddEdge(in0, out, 3); err != nil {
			b.Fatal(err)
		}
		d, err := g.ShortestPath(out)
		if err != nil || d != 2 {
			b.Fatalf("d=%d err=%v", d, err)
		}
	}
}
