package racelogic

import (
	"fmt"
	"strings"
	"sync/atomic"

	"racelogic/internal/index"
	"racelogic/internal/pipeline"
	"racelogic/internal/score"
)

// Database is the persistent form of the paper's Section 1 workload:
// load a sequence collection once, then serve many similarity queries
// against it.  Construction shards the entries into length buckets,
// optionally builds a k-mer seed index (WithSeedIndex), and fixes the
// engine shape (DNA array, gated array, or generalized protein array).
// Compiled engines are kept in per-shape pools across searches, so the
// netlist compilation that dominates a one-shot Search is paid only on
// first contact with each (query length, entry length) shape.
//
// Engines are not concurrency-safe, but a Database is: each in-flight
// race checks a simulator out of its shape pool for exclusive use, so
// Search may be called from any number of goroutines.  The one-shot
// Search function is a thin build-then-search wrapper over Database.
type Database struct {
	cfg      *config
	p        *pipeline.DB
	idx      *index.Index
	searches atomic.Int64
}

// NewDatabase validates and shards entries once, for many searches.  It
// accepts every engine-shaping option (WithLibrary, WithMatrix,
// WithClockGating, WithOneHotEncoding), WithSeedIndex for the k-mer
// pre-filter, and WithThreshold / WithTopK / WithWorkers as per-search
// defaults that individual Search calls may override.
func NewDatabase(entries []string, opts ...Option) (*Database, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if name := cfg.firstApplied("WithFullScan"); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a per-search option; pass it to Database.Search instead", name)
	}
	factory, err := searchFactory(cfg)
	if err != nil {
		return nil, err
	}
	// Validate the entry alphabet once at load: a long-running database
	// must reject a bad entry here, not fail intermittently at query
	// time whenever a candidate set happens to include it.
	alphabet := score.DNAAlphabet
	if cfg.matrix != "" {
		alphabet = score.ProteinAlphabet
	}
	for i, entry := range entries {
		if j := invalidSymbol(entry, alphabet); j >= 0 {
			return nil, fmt.Errorf("racelogic: database entry %d contains symbol %q outside the engine alphabet (%s)",
				i, entry[j], alphabet)
		}
	}
	p, err := pipeline.NewDB(entries, factory, cfg.library)
	if err != nil {
		return nil, err
	}
	d := &Database{cfg: cfg, p: p}
	if cfg.seedK > 0 {
		d.idx, err = index.New(entries, cfg.seedK)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// invalidSymbol returns the position of the first byte of s outside
// alphabet, or -1 when every symbol is valid.
func invalidSymbol(s, alphabet string) int {
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(alphabet, s[i]) < 0 {
			return i
		}
	}
	return -1
}

// Len returns the number of database entries.
func (d *Database) Len() int { return d.p.Len() }

// Buckets returns the number of distinct entry lengths.
func (d *Database) Buckets() int { return d.p.Buckets() }

// SeedK returns the k-mer seed length, or 0 when the database was built
// without WithSeedIndex.
func (d *Database) SeedK() int {
	if d.idx == nil {
		return 0
	}
	return d.idx.K()
}

// EnginesBuilt returns the number of arrays compiled over the database's
// lifetime, across all searches and shapes — the quantity engine pooling
// amortizes.
func (d *Database) EnginesBuilt() int64 { return d.p.EnginesBuilt() }

// PooledEngines returns the number of idle compiled arrays currently
// parked in the shape pools, ready for the next search.
func (d *Database) PooledEngines() int { return d.p.PooledEngines() }

// Searches returns the number of Search calls served.
func (d *Database) Searches() int64 { return d.searches.Load() }

// Search scores query against the database and returns the ranked
// report.  It is safe for concurrent callers.  Per-search options —
// WithThreshold, WithTopK, WithWorkers, WithFullScan — override the
// database defaults; options that shape the compiled engines or the seed
// index (WithLibrary, WithMatrix, WithClockGating, WithOneHotEncoding,
// WithSeedIndex) are fixed at construction and rejected here.
func (d *Database) Search(query string, opts ...Option) (*SearchReport, error) {
	cfg := *d.cfg
	cfg.applied = nil
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if name := cfg.firstApplied(databaseFixedOptions...); name != "" {
		return nil, fmt.Errorf("racelogic: %s is fixed when the database is built; pass it to NewDatabase instead", name)
	}
	return d.search(query, &cfg)
}

// search runs one query under a fully resolved config.
func (d *Database) search(query string, cfg *config) (*SearchReport, error) {
	var cands []int
	skipped := 0
	// A query shorter than k carries no seeds, so the index cannot
	// filter: skip the lookup entirely rather than materialize an
	// identity candidate slice.
	if d.idx != nil && !cfg.fullScan && len(query) >= d.idx.K() {
		cands = d.idx.Candidates(query)
		if len(cands) == d.p.Len() {
			// Full coverage: fall back to the nil "scan everything"
			// convention so the pipeline reuses the buckets sharded at
			// construction.
			cands = nil
		} else {
			skipped = d.p.Len() - len(cands)
		}
	}
	rep, err := d.p.Search(query, pipeline.Request{
		Threshold:  cfg.threshold,
		Workers:    cfg.workers,
		TopK:       cfg.topK,
		Candidates: cands,
	})
	if err != nil {
		return nil, err
	}
	d.searches.Add(1)
	out := &SearchReport{
		Query:        query,
		Results:      make([]SearchResult, len(rep.Results)),
		Scanned:      rep.Scanned,
		Skipped:      skipped,
		Matched:      rep.Matched,
		Rejected:     rep.Rejected,
		Buckets:      rep.Buckets,
		EnginesBuilt: rep.EnginesBuilt,
		TotalCycles:  rep.TotalCycles,
		TotalEnergyJ: rep.TotalEnergyJ,
	}
	for i, r := range rep.Results {
		out.Results[i] = SearchResult{
			Index:    r.Index,
			Sequence: r.Sequence,
			Score:    r.Score,
			Metrics: Metrics{
				Cycles:           r.Cycles,
				LatencyNS:        r.LatencyNS,
				EnergyJ:          r.EnergyJ,
				AreaUM2:          r.AreaUM2,
				PowerDensityWCM2: r.PowerDensityWCM2,
			},
		}
	}
	return out, nil
}
