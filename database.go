package racelogic

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"racelogic/internal/index"
	"racelogic/internal/obs"
	"racelogic/internal/pipeline"
	"racelogic/internal/score"
	"racelogic/internal/store"
)

// ErrUnknownID is wrapped by Database.Remove when an ID does not name a
// live entry — the HTTP layer maps it to 404 Not Found.
var ErrUnknownID = errors.New("no entry with that id")

// Database is the persistent form of the paper's Section 1 workload:
// load a sequence collection once, then serve many similarity queries
// against it.
//
// A Database is partitioned into N independent shards (WithShards,
// default GOMAXPROCS) by a hash of each entry's stable ID.  Every shard
// owns its own copy-on-write pipeline snapshot, k-mer seed index, ID
// tables, tombstone accounting, and — when durable — write-ahead-log
// segment, behind its own write lock.  Mutations touching different
// shards therefore proceed in parallel, and the per-insert seed-index
// update copies one shard's postings map, not the whole database's.
//
// A Search scatters across the shards: per-shard candidate scans fan
// out over one shared worker pool (engines are pooled per shape in one
// Pools all shards share), and the shard outcomes gather under a
// deterministic global ranking, so reports are byte-identical — modulo
// EnginesBuilt — no matter the shard count.  Searches read one
// atomically published view of every shard's snapshot, so a search
// overlapping a mutation (even a multi-shard one) sees either all of it
// or none of it.
//
// Entries carry stable uint64 IDs that survive compaction and
// save/reload; SearchResult.Index is the entry's position in the global
// ID order (exactly the slot numbering an unpartitioned database would
// assign).  Engines are not concurrency-safe, but a Database is: each
// in-flight race checks a simulator out of its shape pool for exclusive
// use, so Search may be called from any number of goroutines.  The
// one-shot Search function is a thin build-then-search wrapper over
// Database.
type Database struct {
	cfg   *config
	pools *pipeline.Pools

	// shards is fixed at construction; each shard's mu serializes the
	// mutations that touch it.  Multi-shard mutations lock their shards
	// in ascending order and publish one new view atomically, so
	// searches get a consistent cut for free.
	shards []*shard

	// view is the consistent snapshot set searches read.  Writers
	// replace it whole (CAS, retried only against writers of disjoint
	// shards) while holding the locks of every shard they changed.
	//
	//racelint:published
	view atomic.Pointer[dbview]

	// ticket numbers logical mutations; in any sequential history it
	// equals the published view version.  nextID allocates stable IDs.
	ticket atomic.Int64
	nextID atomic.Uint64

	closed atomic.Bool

	searches     atomic.Int64
	compactions  atomic.Int64
	snapSaves    atomic.Int64
	snapFailures atomic.Int64
	snapVersion  atomic.Int64 // view version the newest durable snapshot set covers
	lastSnap     atomic.Int64 // unix nanos of the newest durable snapshot set
	walReplayed  atomic.Int64 // journal records replayed over snapshots at open

	// metrics is the database's instrument set (see obs.go) and idxStats
	// the seed-lookup counter sink shared by every shard's index lineage.
	// Both are set once in assembleShards, before the database is shared.
	metrics  *dbMetrics
	idxStats *index.Stats

	// Durability.  All zero on a memory-only database; set once by
	// Persist or Open under lmu, then read by the mutation path and the
	// snapshotter goroutine.
	lmu          sync.Mutex // guards the lifecycle fields below
	durable      bool
	dir          string
	gen          int // layout generation the shard files are named under
	snapInterval time.Duration
	snapEvery    int
	snapSignal   chan struct{} // nudges the snapshotter (count/rotation trigger)
	stopSnap     chan struct{}
	loopDone     chan struct{}
	walSync      atomic.Bool // fsync (group-committed) before acknowledging
	saveMu       sync.Mutex  // serializes durable snapshot file writes

	// compaction is the automatic tombstone-reclamation policy, checked
	// against the global dead/live counts after every Remove (and, when
	// durable, on the policy's Interval); the compaction itself runs
	// shard by shard.
	cmu        sync.Mutex
	compaction CompactionPolicy
}

// shard is one partition: a pipeline DB over the shard's local slots,
// the writer-side ID table, and the shard's journal.  mu serializes
// every mutation that touches the shard; searches never take it.
type shard struct {
	id       int
	mu       sync.Mutex
	p        *pipeline.DB
	byID     map[uint64]int // ID → local slot; writers only, under mu
	jrnl     *store.Journal // nil on a memory-only database; set under mu
	idxStats *index.Stats   // re-attached to every index a compaction rebuilds

	snapSeq  atomic.Int64 // shard sequence the newest durable shard snapshot covers
	lastSnap atomic.Int64 // unix nanos of this shard's newest durable snapshot
}

// shardstate is one immutable version of everything a search reads from
// one shard.  The fields advance together: the index covers exactly the
// snapshot's slot space, ids names every slot (tombstoned ones keep
// their stale ID until compaction), and sorted holds the same resident
// IDs in ascending order — the order-statistics table global ranks are
// computed from.
//
//racelint:cow
type shardstate struct {
	snap   *pipeline.Snapshot
	idx    *index.Index
	ids    []uint64 // local slot → stable ID
	sorted []uint64 // resident IDs (live + tombstoned), ascending
}

// dbview is the atomically published set of shard states plus the
// global version.  A multi-shard mutation swaps every state it changed
// in one CAS, which is what makes cross-shard mutations atomic to
// searches.
//
//racelint:cow
type dbview struct {
	version int64
	states  []*shardstate
}

// live returns the global live entry count.
func (v *dbview) live() int {
	n := 0
	for _, st := range v.states {
		n += st.snap.Len()
	}
	return n
}

// dead returns the global tombstone count.
func (v *dbview) dead() int {
	n := 0
	for _, st := range v.states {
		n += st.snap.Dead()
	}
	return n
}

// rank returns the number of resident IDs (live and tombstoned) below
// id across every shard — the entry's position in the global slot order
// an unpartitioned database would assign.
func (v *dbview) rank(id uint64) int {
	r := 0
	for _, st := range v.states {
		r += sort.Search(len(st.sorted), func(i int) bool { return st.sorted[i] >= id })
	}
	return r
}

// shardOf routes a stable ID to its shard: a splitmix64-style finalizer
// so adjacent IDs spread evenly, fixed forever because recovery must
// route every journaled ID to the shard that logged it.
func shardOf(id uint64, n int) int {
	if n == 1 {
		return 0
	}
	x := id
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// resolveShards maps the config's shard option to a concrete count.
// The GOMAXPROCS default is clamped to the same MaxShards bound the
// explicit option enforces.
func (c *config) resolveShards() int {
	if c.shards > 0 {
		return c.shards
	}
	n := runtime.GOMAXPROCS(0)
	if n > MaxShards {
		n = MaxShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewDatabase validates and partitions entries once, for many searches.
// It accepts every engine-shaping option (WithLibrary, WithMatrix,
// WithClockGating, WithOneHotEncoding), WithSeedIndex for the k-mer
// pre-filter, WithShards for the partition count, and WithThreshold /
// WithTopK / WithWorkers as per-search defaults that individual Search
// calls may override.  The entries are assigned stable IDs
// 0..len(entries)-1 in order.
func NewDatabase(entries []string, opts ...Option) (*Database, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if name := cfg.firstApplied("WithFullScan"); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a per-search option; pass it to Database.Search instead", name)
	}
	if name := cfg.firstApplied("WithSync", "WithSnapshotInterval", "WithSnapshotEvery", "WithWALSegmentBytes"); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a durability option; pass it to Persist or Open instead", name)
	}
	ids := make([]uint64, len(entries))
	for i := range ids {
		ids[i] = uint64(i)
	}
	return assembleDatabase(cfg, entries, ids, uint64(len(entries)), 0, nil)
}

// assembleDatabase wires a Database from a flat (entries, ids) list —
// the shared tail of NewDatabase, OpenSnapshot, and the migration path.
// Entries are partitioned by shardOf.  A non-nil gix — the global seed
// index a portable snapshot carries — is partitioned alongside them so
// a reload skips re-tokenizing the collection; otherwise each shard's
// index is built fresh when cfg asks for one.
func assembleDatabase(cfg *config, entries []string, ids []uint64, nextID uint64, version int64,
	gix *index.Index) (*Database, error) {
	if len(ids) != len(entries) {
		return nil, fmt.Errorf("racelogic: %d IDs for %d entries", len(ids), len(entries))
	}
	// Validate the entry alphabet once at load: a long-running database
	// must reject a bad entry here, not fail intermittently at query
	// time whenever a candidate set happens to include it.
	alphabet := cfg.alphabet()
	for i, entry := range entries {
		if j := invalidSymbol(entry, alphabet); j >= 0 {
			return nil, fmt.Errorf("racelogic: database entry %d contains symbol %q outside the engine alphabet (%s)",
				i, entry[j], alphabet)
		}
		if len(entry) == 0 {
			return nil, fmt.Errorf("racelogic: database entry %d is empty", i)
		}
	}
	n := cfg.resolveShards()
	parts := make([]shardPart, n)
	for i, entry := range entries {
		s := shardOf(ids[i], n)
		parts[s].entries = append(parts[s].entries, entry)
		parts[s].ids = append(parts[s].ids, ids[i])
	}
	if gix != nil && cfg.seedK > 0 && gix.K() == cfg.seedK {
		shardIdx := gix.Partition(n, func(slot int) int { return shardOf(ids[slot], n) })
		for s := range parts {
			parts[s].idx = shardIdx[s]
		}
	}
	return assembleShards(cfg, parts, nextID, version)
}

// shardPart is one shard's slice of the database at assembly time.
type shardPart struct {
	entries []string
	ids     []uint64
	idx     *index.Index // nil = build from entries when cfg.seedK > 0
	seq     int64        // the shard's restored mutation sequence
}

// assembleShards builds the Database from per-shard parts — the shared
// tail of every constructor, including the per-shard recovery path.
//
//racelint:publisher
func assembleShards(cfg *config, parts []shardPart, nextID uint64, version int64) (*Database, error) {
	factory, err := searchFactory(cfg)
	if err != nil {
		return nil, err
	}
	pools, err := pipeline.NewPools(factory, cfg.library)
	if err != nil {
		return nil, err
	}
	d := &Database{
		cfg:        cfg,
		pools:      pools,
		shards:     make([]*shard, len(parts)),
		compaction: cfg.compaction,
		idxStats:   &index.Stats{},
	}
	states := make([]*shardstate, len(parts))
	for s, part := range parts {
		p, err := pipeline.NewDBWith(part.entries, pools)
		if err != nil {
			return nil, err
		}
		if part.seq != 0 {
			p.SetVersion(part.seq)
		}
		idx := part.idx
		if idx == nil && cfg.seedK > 0 {
			if idx, err = index.New(part.entries, cfg.seedK); err != nil {
				return nil, err
			}
		}
		if idx != nil {
			idx.SetStats(d.idxStats)
		}
		sh := &shard{id: s, p: p, byID: make(map[uint64]int, len(part.ids)), idxStats: d.idxStats}
		for slot, id := range part.ids {
			sh.byID[id] = slot
		}
		sorted := append([]uint64(nil), part.ids...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		d.shards[s] = sh
		states[s] = &shardstate{snap: p.Snapshot(), idx: idx, ids: part.ids, sorted: sorted}
	}
	d.nextID.Store(nextID)
	d.ticket.Store(version)
	d.view.Store(&dbview{version: version, states: states})
	d.initObs()
	return d, nil
}

// alphabet returns the symbol set the configured engine accepts.
func (c *config) alphabet() string {
	if c.matrix != "" {
		return score.ProteinAlphabet
	}
	return score.DNAAlphabet
}

// invalidSymbol returns the position of the first byte of s outside
// alphabet, or -1 when every symbol is valid.
func invalidSymbol(s, alphabet string) int {
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(alphabet, s[i]) < 0 {
			return i
		}
	}
	return -1
}

// allShards returns every shard index ascending — the lock-every-shard
// order.
func (d *Database) allShards() []int {
	all := make([]int, len(d.shards))
	for i := range all {
		all[i] = i
	}
	return all
}

// lockShards acquires the listed shard locks in ascending order (the
// deadlock-free total order) and returns an unlock function.
func (d *Database) lockShards(touched []int) func() {
	for _, s := range touched {
		d.shards[s].mu.Lock()
	}
	return func() {
		for _, s := range touched {
			d.shards[s].mu.Unlock()
		}
	}
}

// publish installs the new states of the touched shards as one new view
// with a fresh unique version.  The caller holds every touched shard's
// lock, so the CAS retries only against concurrent writers of disjoint
// shards and the per-shard states can never regress.
//
//racelint:publisher
func (d *Database) publish(touched []int, states map[int]*shardstate, ticket int64) *dbview {
	for {
		cur := d.view.Load()
		ns := make([]*shardstate, len(cur.states))
		copy(ns, cur.states)
		for _, s := range touched {
			ns[s] = states[s]
		}
		ver := cur.version + 1
		if ticket > ver {
			ver = ticket
		}
		nv := &dbview{version: ver, states: ns}
		if d.view.CompareAndSwap(cur, nv) {
			return nv
		}
	}
}

// appendSorted extends a shard's ascending resident-ID table with a
// freshly inserted ID block.  The common case — the new IDs exceed
// every resident one — is a copy-on-write append past every older
// state's length; an out-of-order block (possible when concurrent
// multi-shard inserts race) falls back to a sorted copy.
func appendSorted(sorted, ids []uint64) []uint64 {
	if len(sorted) == 0 || ids[0] > sorted[len(sorted)-1] {
		return append(sorted, ids...)
	}
	out := make([]uint64, 0, len(sorted)+len(ids))
	out = append(out, sorted...)
	out = append(out, ids...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// applyInsert applies a validated insert with pre-assigned IDs to one
// shard and returns its replacement state.  Caller holds the shard's
// lock; cur is the shard's current state.
func (sh *shard) applyInsert(cur *shardstate, ids []uint64, entries []string) (*shardstate, error) {
	start, snap, err := sh.p.Insert(entries)
	if err != nil {
		return nil, err
	}
	nids := cur.ids
	for j, id := range ids {
		sh.byID[id] = start + j
		nids = append(nids, id)
	}
	idx := cur.idx
	if idx != nil {
		idx = idx.Grow(entries)
	}
	return &shardstate{snap: snap, idx: idx, ids: nids, sorted: appendSorted(cur.sorted, ids)}, nil
}

// applyRemove tombstones the given IDs (all pre-validated as live in
// this shard) and returns the replacement state.  Caller holds the
// shard's lock.
func (sh *shard) applyRemove(cur *shardstate, ids []uint64) (*shardstate, error) {
	slots := make([]int, len(ids))
	for i, id := range ids {
		slot, ok := sh.byID[id]
		if !ok {
			return nil, fmt.Errorf("racelogic: remove %d: %w", id, ErrUnknownID)
		}
		slots[i] = slot
	}
	snap, err := sh.p.Remove(slots)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		delete(sh.byID, id)
	}
	return &shardstate{snap: snap, idx: cur.idx, ids: cur.ids, sorted: cur.sorted}, nil
}

// applyCompact rebuilds the shard densely and returns the replacement
// state, or cur unchanged when there is nothing to reclaim.  Caller
// holds the shard's lock.
func (sh *shard) applyCompact(cur *shardstate) (*shardstate, error) {
	remap, snap := sh.p.Compact()
	if remap == nil {
		return cur, nil
	}
	ids := make([]uint64, snap.Slots())
	for old, slot := range remap {
		if slot >= 0 {
			ids[slot] = cur.ids[old]
			sh.byID[cur.ids[old]] = slot
		}
	}
	idx := cur.idx
	if idx != nil {
		var err error
		if idx, err = index.New(snap.Entries(), idx.K()); err != nil {
			return nil, err
		}
		// A from-scratch rebuild loses the counter sink Grow/Partition
		// would have propagated; re-attach it before the state publishes.
		idx.SetStats(sh.idxStats)
	}
	sorted := append([]uint64(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return &shardstate{snap: snap, idx: idx, ids: ids, sorted: sorted}, nil
}

// state returns the shard's current published state.  Stable while the
// shard's lock is held (other writers cannot touch this shard).
func (d *Database) state(s int) *shardstate { return d.view.Load().states[s] }

// mutationJournal is the per-shard journaling of one logical mutation:
// append-then-apply, with rollback of the shards already journaled when
// a later shard's append fails, so a failed mutation leaves neither
// memory nor disk changed.
type pendingCommit struct {
	shard  int
	commit store.Commit
}

// journalShards appends one record per touched shard, rolling all of
// them back on the first failure so a failed mutation leaves neither
// memory nor disk changed.
//
//racelint:journal
func (d *Database) journalShards(touched []int, appendRec func(sh *shard) (store.Commit, error)) ([]pendingCommit, error) {
	var commits []pendingCommit
	for _, s := range touched {
		sh := d.shards[s]
		if sh.jrnl == nil {
			return nil, nil // memory-only: no shard journals anything
		}
		c, err := appendRec(sh)
		if err != nil {
			for _, pc := range commits {
				_ = d.shards[pc.shard].jrnl.DropLast()
			}
			return nil, err
		}
		commits = append(commits, pendingCommit{shard: s, commit: c})
	}
	return commits, nil
}

// ack waits for the journaled records of one mutation to reach stable
// storage when the database runs with WithSync.  It is called after the
// shard locks are released, which is what lets the per-shard flushes of
// concurrent mutations coalesce into group commits.
//
// An ack failure means the mutation's outcome is indeterminate, exactly
// like a crash between append and return: the mutation is applied in
// memory and its record may or may not survive a restart, so the caller
// gets ErrJournal and must treat the state as unknown rather than
// retry blindly.  The WAL latches the failure — no later mutation can
// be acknowledged on top of the suspect tail, and appends fail fast
// (before applying anything) until a checkpoint folds the journal into
// a durable snapshot and proves the device writable again.
func (d *Database) ack(commits []pendingCommit) error {
	if !d.walSync.Load() || len(commits) == 0 {
		return nil
	}
	if len(commits) == 1 {
		return commits[0].commit.Wait()
	}
	errs := make([]error, len(commits))
	var wg sync.WaitGroup
	for i, pc := range commits {
		wg.Add(1)
		go func(i int, c store.Commit) {
			defer wg.Done()
			errs[i] = c.Wait()
		}(i, pc.commit)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// maybeRotate seals any touched shard's oversized journal segment and,
// if a seal happened, nudges the snapshotter to fold it into a snapshot
// eagerly — the WALBytes bound that holds even with the count and
// interval triggers disabled.
func (d *Database) maybeRotate(touched []int) {
	rotated := false
	for _, s := range touched {
		sh := d.shards[s]
		sh.mu.Lock()
		if sh.jrnl != nil {
			if r, err := sh.jrnl.RotateIfOversized(); err != nil {
				d.snapFailures.Add(1)
			} else if r {
				rotated = true
			}
		}
		sh.mu.Unlock()
	}
	if rotated {
		d.nudgeSnapshotter()
	}
}

// Insert adds entries to the live database and returns their newly
// assigned stable IDs, in order.  The entries are routed to their
// shards by ID hash; each shard extends its length buckets and k-mer
// seed index incrementally (copy-on-write, no rebuild), and the new
// shard states are published as one atomic view — searches in flight
// keep their pre-insert view, searches started after Insert returns see
// every new entry, and no search ever sees half of a multi-shard batch.
// Entries are validated against the engine alphabet first; on any
// invalid entry nothing is inserted.  Inserting zero entries is a no-op
// that does not bump the version.
//
// On a durable database (Persist/Open) the insert is journaled to each
// touched shard's write-ahead log before it is applied; with WithSync
// the flushes of concurrent mutations are group-committed.
func (d *Database) Insert(entries ...string) ([]uint64, error) {
	alphabet := d.cfg.alphabet()
	for i, entry := range entries {
		if len(entry) == 0 {
			return nil, fmt.Errorf("racelogic: inserted entry %d is empty", i)
		}
		if j := invalidSymbol(entry, alphabet); j >= 0 {
			return nil, fmt.Errorf("racelogic: inserted entry %d contains symbol %q outside the engine alphabet (%s)",
				i, entry[j], alphabet)
		}
	}
	if len(entries) == 0 {
		return []uint64{}, nil
	}
	if d.closed.Load() {
		return nil, ErrClosed
	}
	base := d.nextID.Add(uint64(len(entries))) - uint64(len(entries))
	newIDs := make([]uint64, len(entries))
	n := len(d.shards)
	partIDs := make(map[int][]uint64, 1)
	partEntries := make(map[int][]string, 1)
	for j := range entries {
		id := base + uint64(j)
		newIDs[j] = id
		s := shardOf(id, n)
		partIDs[s] = append(partIDs[s], id)
		partEntries[s] = append(partEntries[s], entries[j])
	}
	touched := sortedKeys(partIDs)

	unlock := d.lockShards(touched)
	if d.closed.Load() {
		unlock()
		return nil, ErrClosed
	}
	t := d.ticket.Add(1)
	commits, err := d.journalShards(touched, func(sh *shard) (store.Commit, error) {
		return sh.jrnl.AppendInsert(sh.p.Version()+1, t, partIDs[sh.id], partEntries[sh.id])
	})
	if err != nil {
		unlock()
		return nil, fmt.Errorf("%w: insert: %w", ErrJournal, err)
	}
	states, err := d.applyParallel(touched, func(sh *shard, cur *shardstate) (*shardstate, error) {
		return sh.applyInsert(cur, partIDs[sh.id], partEntries[sh.id])
	})
	if err != nil {
		unlock()
		return nil, err
	}
	d.publish(touched, states, t)
	unlock()

	if err := d.ack(commits); err != nil {
		return nil, fmt.Errorf("%w: insert: %w", ErrJournal, err)
	}
	d.maybeRotate(touched)
	d.signalSnapshotter()
	return newIDs, nil
}

// applyParallel runs one shard-state transition on every touched shard,
// concurrently when the mutation spans shards — the per-shard index and
// bucket copies are the mutation's real cost, and they are independent.
// Caller holds every touched shard's lock.
func (d *Database) applyParallel(touched []int, apply func(sh *shard, cur *shardstate) (*shardstate, error)) (map[int]*shardstate, error) {
	states := make(map[int]*shardstate, len(touched))
	if len(touched) == 1 {
		s := touched[0]
		st, err := apply(d.shards[s], d.state(s))
		if err != nil {
			return nil, err
		}
		states[s] = st
		return states, nil
	}
	var mu sync.Mutex
	errs := make([]error, len(touched))
	var wg sync.WaitGroup
	for i, s := range touched {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			st, err := apply(d.shards[s], d.state(s))
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			states[s] = st
			mu.Unlock()
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return states, nil
}

// sortedKeys returns the map's keys ascending — the shard lock order.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Remove deletes the entries with the given stable IDs.  It is
// all-or-nothing: an unknown or repeated ID returns an error (wrapping
// ErrUnknownID for unknown ones) with nothing removed.  Removal
// tombstones the entries' slots in their shards — each shard's seed
// index keeps its postings and searches filter them — until the
// CompactionPolicy triggers against the global tombstone counts, at
// which point every shard holding tombstones compacts.  In-flight
// searches keep their pre-remove view either way.
//
// On a durable database the remove (and any policy-triggered
// compaction) is journaled to the touched shards' write-ahead logs
// before it is applied.
func (d *Database) Remove(ids ...uint64) error {
	if len(ids) == 0 {
		return nil
	}
	if d.closed.Load() {
		return ErrClosed
	}
	n := len(d.shards)
	partIDs := make(map[int][]uint64, 1)
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("racelogic: remove: id %d repeated in one call", id)
		}
		seen[id] = true
		s := shardOf(id, n)
		partIDs[s] = append(partIDs[s], id)
	}
	touched := sortedKeys(partIDs)

	unlock := d.lockShards(touched)
	if d.closed.Load() {
		unlock()
		return ErrClosed
	}
	for _, s := range touched {
		for _, id := range partIDs[s] {
			if _, ok := d.shards[s].byID[id]; !ok {
				unlock()
				return fmt.Errorf("racelogic: remove %d: %w", id, ErrUnknownID)
			}
		}
	}
	t := d.ticket.Add(1)
	commits, err := d.journalShards(touched, func(sh *shard) (store.Commit, error) {
		return sh.jrnl.AppendRemove(sh.p.Version()+1, t, partIDs[sh.id])
	})
	if err != nil {
		unlock()
		return fmt.Errorf("%w: remove: %w", ErrJournal, err)
	}
	states, err := d.applyParallel(touched, func(sh *shard, cur *shardstate) (*shardstate, error) {
		return sh.applyRemove(cur, partIDs[sh.id])
	})
	if err != nil {
		unlock()
		return err
	}
	nv := d.publish(touched, states, t)
	unlock()

	if err := d.ack(commits); err != nil {
		return fmt.Errorf("%w: remove: %w", ErrJournal, err)
	}
	d.maybeRotate(touched)

	// Compact when the policy says the global tombstone count is worth
	// reclaiming: the wasted slots cost collector memory per search and
	// stale postings per seed lookup, and each shard's dense rebuild is
	// O(shard live) — cheap exactly when the live set has shrunk.  A
	// concurrent Close may fence the compaction off; the tombstones then
	// simply persist (and replay), so the remove itself still succeeded.
	if d.policy().due(nv.dead(), nv.live()) {
		if _, _, err := d.compactAll(false, false); err != nil && !errors.Is(err, ErrClosed) {
			return err
		}
	}
	d.signalSnapshotter()
	return nil
}

// policy returns the current automatic compaction policy.
func (d *Database) policy() CompactionPolicy {
	d.cmu.Lock()
	defer d.cmu.Unlock()
	return d.compaction
}

func (d *Database) setPolicy(p CompactionPolicy) {
	d.cmu.Lock()
	d.compaction = p
	d.cmu.Unlock()
}

// CompactStats reports one compaction.  Entry IDs are the stable handle
// across compactions; Remap exists only for clients that cached
// slot-based state (a SearchResult.Index, a pipeline candidate list)
// and need to rebind it.
type CompactStats struct {
	// Version is the database mutation counter after the compaction (or
	// the unchanged current version when nothing was reclaimed).
	Version int64
	// Live is the number of live entries; Reclaimed the tombstoned
	// slots dropped by this compaction (0 = nothing to do).
	Live, Reclaimed int
	// Remap maps every pre-compaction slot to its post-compaction slot,
	// -1 for the dropped tombstones.  Slots are global ID-order
	// positions, exactly as SearchResult.Index reports them.  Nil when
	// nothing was reclaimed.
	Remap []int
}

// Compact forces a dense rebuild of every shard holding tombstones,
// regardless of the automatic CompactionPolicy, and reports what moved.
// With no tombstones it is a no-op that does not bump the version.  On
// a durable database each shard's compaction is journaled.  Searches in
// flight keep their pre-compact view; entry IDs are unaffected — they
// are the stable handle.
func (d *Database) Compact() (*CompactStats, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	stats, _, err := d.compactAll(true, false)
	return stats, err
}

// compactAll is the one logical compaction: it locks every shard,
// journals and applies a dense rebuild on each shard with tombstones,
// and publishes the result as a single version bump.  It returns the
// stats plus the view the compaction published (or the unchanged
// current view when there was nothing to reclaim), which is guaranteed
// dense at publish time — the checkpoint path serializes exactly that
// view.  needRemap builds the global slot remap (skipped on the
// automatic path, where nobody consumes it); ignoreClosed lets Close's
// final checkpoint compact after mutations are fenced off.
func (d *Database) compactAll(needRemap, ignoreClosed bool) (*CompactStats, *dbview, error) {
	all := d.allShards()
	unlock := d.lockShards(all)
	if !ignoreClosed && d.closed.Load() {
		unlock()
		return nil, nil, ErrClosed
	}
	stats, nv, commits, err := d.compactLocked(needRemap)
	unlock()
	if err != nil {
		return nil, nil, err
	}
	if stats.Reclaimed > 0 {
		if err := d.ack(commits); err != nil {
			return nil, nil, fmt.Errorf("%w: compaction: %w", ErrJournal, err)
		}
		d.maybeRotate(all)
		d.signalSnapshotter()
	}
	return stats, nv, nil
}

// compactLocked is compactAll's core, run while the caller holds every
// shard lock (Persist reuses it under its own locking).
func (d *Database) compactLocked(needRemap bool) (*CompactStats, *dbview, []pendingCommit, error) {
	v := d.view.Load()
	if v.dead() == 0 {
		return &CompactStats{Version: v.version, Live: v.live()}, v, nil, nil
	}
	var touched []int
	for s, st := range v.states {
		if st.snap.Dead() > 0 {
			touched = append(touched, s)
		}
	}
	t := d.ticket.Add(1)
	commits, err := d.journalShards(touched, func(sh *shard) (store.Commit, error) {
		return sh.jrnl.AppendCompact(sh.p.Version()+1, t)
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: compaction: %w", ErrJournal, err)
	}

	var remap []int
	if needRemap {
		remap = globalRemap(v)
	}
	states, err := d.applyParallel(touched, func(sh *shard, cur *shardstate) (*shardstate, error) {
		return sh.applyCompact(cur)
	})
	if err != nil {
		return nil, nil, nil, err
	}
	nv := d.publish(touched, states, t)
	d.compactions.Add(1)
	return &CompactStats{
		Version:   nv.version,
		Live:      nv.live(),
		Reclaimed: v.dead(),
		Remap:     remap,
	}, nv, commits, nil
}

// globalRemap computes the pre→post compaction slot remap in global
// ID-order coordinates: every resident ID (live and tombstoned) gets a
// pre-compaction position; the survivors keep their relative order and
// renumber densely.
func globalRemap(v *dbview) []int {
	type resident struct {
		id   uint64
		live bool
	}
	var all []resident
	for _, st := range v.states {
		for slot, id := range st.ids {
			all = append(all, resident{id: id, live: st.snap.Live(slot)})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	remap := make([]int, len(all))
	next := 0
	for i, r := range all {
		if r.live {
			remap[i] = next
			next++
		} else {
			remap[i] = -1
		}
	}
	return remap
}

// Shards returns the partition count fixed at construction.
func (d *Database) Shards() int { return len(d.shards) }

// Len returns the number of live database entries.
func (d *Database) Len() int { return d.view.Load().live() }

// Buckets returns the number of distinct live entry lengths across
// every shard.
func (d *Database) Buckets() int {
	set := make(map[int]bool)
	for _, st := range d.view.Load().states {
		for _, m := range st.snap.Lengths() {
			set[m] = true
		}
	}
	return len(set)
}

// Version returns the mutation counter: 0 for a fresh database,
// incremented by every Insert, Remove, and compaction, and preserved
// across SaveSnapshot/OpenSnapshot and Persist/Open.
func (d *Database) Version() int64 { return d.view.Load().version }

// Tombstones returns the number of removed entries whose slots have not
// been compacted away yet, across every shard.
func (d *Database) Tombstones() int { return d.view.Load().dead() }

// IDs returns the stable IDs of every live entry, ascending — the
// global slot order.
func (d *Database) IDs() []uint64 {
	v := d.view.Load()
	out := make([]uint64, 0, v.live())
	for _, st := range v.states {
		for slot := 0; slot < st.snap.Slots(); slot++ {
			if st.snap.Live(slot) {
				out = append(out, st.ids[slot])
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// SeedK returns the k-mer seed length, or 0 when the database was built
// without WithSeedIndex.
func (d *Database) SeedK() int { return d.cfg.seedK }

// Backend returns the simulation engine the database's races run on,
// fixed at construction by WithBackend (default BackendCycle).
func (d *Database) Backend() Backend { return d.cfg.backend }

// EnginesBuilt returns the number of arrays compiled over the database's
// lifetime, across all searches, shapes, and shards — the quantity
// engine pooling amortizes (all shards share one pool set).
func (d *Database) EnginesBuilt() int64 { return d.pools.EnginesBuilt() }

// PooledEngines returns the number of idle compiled arrays currently
// parked in the shared shape pools, ready for the next search.
func (d *Database) PooledEngines() int { return d.pools.PooledEngines() }

// Searches returns the number of Search calls served.
func (d *Database) Searches() int64 { return d.searches.Load() }

// Search scores query against the database and returns the ranked
// report.  It is safe for concurrent callers, including concurrently
// with Insert and Remove: the whole search runs against the one view
// current when it started — every shard snapshot from the same
// published cut, so even a multi-shard mutation is all-or-nothing to
// it — and the report's Version records which one.  Per-search options
// — WithThreshold, WithTopK, WithWorkers, WithFullScan — override the
// database defaults; options that shape the compiled engines, the seed
// index, or the partition layout (WithLibrary, WithMatrix,
// WithClockGating, WithOneHotEncoding, WithSeedIndex, WithShards) are
// fixed at construction and rejected here.
func (d *Database) Search(query string, opts ...Option) (*SearchReport, error) {
	return d.SearchContext(context.Background(), query, opts...)
}

// SearchContext is Search with a context.  A trace attached via
// obs.WithTrace is carried through the scatter-gather pipeline and
// filled with per-shard span timings and hardware-native dimensions;
// an untraced context costs one nil check per layer.
func (d *Database) SearchContext(ctx context.Context, query string, opts ...Option) (*SearchReport, error) {
	cfg := *d.cfg
	cfg.applied = nil
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if name := cfg.firstApplied(databaseFixedOptions...); name != "" {
		return nil, fmt.Errorf("racelogic: %s is fixed when the database is built; pass it to NewDatabase instead", name)
	}
	return d.search(ctx, query, &cfg)
}

// seedFiltered reports whether the seed index can narrow a scan for
// query under cfg.  A query shorter than k carries no seeds, so the
// index cannot filter: skip the lookups entirely rather than
// materialize identity candidate slices.  The condition is uniform
// across shards (one k).
func seedFiltered(query string, cfg *config) bool {
	return cfg.seedK > 0 && !cfg.fullScan && len(query) >= cfg.seedK
}

// shardScans builds one query's per-shard candidate scans against v:
// the seed-index lookup, tombstone filtering, and the nil
// "scan everything" fallback, shared by the single-query and batch
// search paths.  tr may be the nil trace.
func (d *Database) shardScans(v *dbview, query string, cfg *config, tr *obs.Trace) []pipeline.ShardScan {
	filtered := seedFiltered(query, cfg)
	scans := make([]pipeline.ShardScan, len(d.shards))
	for s, st := range v.states {
		sc := pipeline.ShardScan{DB: d.shards[s].p, Snap: st.snap, IDs: st.ids}
		if filtered && st.idx != nil {
			cands := st.idx.Candidates(query)
			// Postings may still name tombstoned slots (removal leaves
			// the index untouched until compaction); drop them here.
			n := 0
			for _, slot := range cands {
				if st.snap.Live(slot) {
					cands[n] = slot
					n++
				}
			}
			cands = cands[:n]
			tr.SetShardSkipped(s, st.snap.Len()-len(cands))
			if len(cands) == st.snap.Len() {
				// Full shard coverage: fall back to the nil "scan
				// everything" convention so the pipeline reuses the
				// buckets sharded at publish time.
				cands = nil
			}
			sc.Candidates = cands
		}
		scans[s] = sc
	}
	return scans
}

// reportFrom converts one pipeline report into the public SearchReport
// against the view the search ran over: Skipped is derived from the
// live count when the seed index filtered, and Index from the global
// stable-ID ranking.
func (d *Database) reportFrom(v *dbview, query string, cfg *config, rep *pipeline.Report) *SearchReport {
	skipped := 0
	if seedFiltered(query, cfg) {
		skipped = v.live() - rep.Scanned
	}
	out := &SearchReport{
		Query:        query,
		Version:      v.version,
		Results:      make([]SearchResult, len(rep.Results)),
		Scanned:      rep.Scanned,
		Skipped:      skipped,
		Matched:      rep.Matched,
		Rejected:     rep.Rejected,
		Buckets:      rep.Buckets,
		EnginesBuilt: rep.EnginesBuilt,
		TotalCycles:  rep.TotalCycles,
		TotalEnergyJ: rep.TotalEnergyJ,
	}
	for i, r := range rep.Results {
		out.Results[i] = SearchResult{
			Index:    v.rank(r.ID),
			ID:       r.ID,
			Sequence: r.Sequence,
			Score:    r.Score,
			Metrics: Metrics{
				Cycles:           r.Cycles,
				LatencyNS:        r.LatencyNS,
				EnergyJ:          r.EnergyJ,
				AreaUM2:          r.AreaUM2,
				PowerDensityWCM2: r.PowerDensityWCM2,
			},
		}
	}
	return out
}

// search runs one query under a fully resolved config, against the
// view loaded once here: per-shard seed-index candidate scans scatter
// over the shared worker pool, and the shard outcomes gather under the
// global (Score, ID) ranking.
func (d *Database) search(ctx context.Context, query string, cfg *config) (*SearchReport, error) {
	tr := obs.TraceFrom(ctx)
	begin := time.Now()
	v := d.view.Load()
	endSeed := tr.StartSpan("seed")
	scans := d.shardScans(v, query, cfg, tr)
	endSeed()
	rep, err := pipeline.MultiSearch(scans, query, pipeline.Request{
		Threshold: cfg.threshold,
		Workers:   cfg.workers,
		TopK:      cfg.topK,
		Trace:     tr,
	})
	if err != nil {
		return nil, err
	}
	d.searches.Add(1)
	out := d.reportFrom(v, query, cfg, rep)
	d.metrics.observeSearch(time.Since(begin), out)
	return out, nil
}

// SearchBatch scores every query in one pipeline pass and returns one
// report per query, in input order.  Each report is byte-identical to
// what Search would return for its query against the same view —
// results, scores, scan counts, cycles, energy — except EnginesBuilt,
// which (like a re-sharded snapshot's) reflects the batch's shared
// engine pool rather than a per-query count.
//
// The point of batching is lane fill: under BackendLanes, candidate
// pairs from different queries that share an edit-graph shape are
// packed into the same wide lane slab, so a batch of short queries can
// fill 64–512 lanes per race where sequential calls would leave most
// lanes idle.  Engine checkouts, scan planning, and worker fan-out are
// likewise paid once per batch.
//
// SearchBatch accepts the same per-search options as Search, resolved
// once for the whole batch.  An empty batch returns an empty slice.
// If any query fails, the whole batch fails with a *BatchError naming
// the lowest-numbered failing query.
func (d *Database) SearchBatch(queries []string, opts ...Option) ([]*SearchReport, error) {
	return d.SearchBatchContext(context.Background(), queries, opts...)
}

// SearchBatchContext is SearchBatch with a context.  Per-query tracing
// is not supported on the batch path: a trace attached to ctx is
// ignored, because its spans and shard dimensions describe exactly one
// query.  Trace individual Search calls instead.
func (d *Database) SearchBatchContext(ctx context.Context, queries []string, opts ...Option) ([]*SearchReport, error) {
	cfg := *d.cfg
	cfg.applied = nil
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if name := cfg.firstApplied(databaseFixedOptions...); name != "" {
		return nil, fmt.Errorf("racelogic: %s is fixed when the database is built; pass it to NewDatabase instead", name)
	}
	return d.searchBatch(ctx, queries, &cfg)
}

// searchBatch runs the whole batch against one view loaded here, so
// every report carries the same Version even under concurrent
// mutation.
func (d *Database) searchBatch(_ context.Context, queries []string, cfg *config) ([]*SearchReport, error) {
	begin := time.Now()
	v := d.view.Load()
	scanSets := make([][]pipeline.ShardScan, len(queries))
	for qi, query := range queries {
		if len(query) == 0 {
			return nil, &BatchError{Query: qi, Err: fmt.Errorf("racelogic: empty query")}
		}
		scanSets[qi] = d.shardScans(v, query, cfg, nil)
	}
	reps, err := pipeline.MultiSearchBatch(scanSets, queries, pipeline.Request{
		Threshold: cfg.threshold,
		Workers:   cfg.workers,
		TopK:      cfg.topK,
	})
	if err != nil {
		var qe *pipeline.QueryError
		if errors.As(err, &qe) {
			return nil, &BatchError{Query: qe.Query, Err: qe.Err}
		}
		return nil, err
	}
	d.searches.Add(int64(len(queries)))
	out := make([]*SearchReport, len(reps))
	for qi, rep := range reps {
		out[qi] = d.reportFrom(v, queries[qi], cfg, rep)
	}
	d.metrics.observeSearchBatch(time.Since(begin), out)
	return out, nil
}
