package racelogic

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"racelogic/internal/index"
	"racelogic/internal/pipeline"
	"racelogic/internal/score"
	"racelogic/internal/store"
)

// ErrUnknownID is wrapped by Database.Remove when an ID does not name a
// live entry — the HTTP layer maps it to 404 Not Found.
var ErrUnknownID = errors.New("no entry with that id")

// Database is the persistent form of the paper's Section 1 workload:
// load a sequence collection once, then serve many similarity queries
// against it.  Construction shards the entries into length buckets,
// optionally builds a k-mer seed index (WithSeedIndex), and fixes the
// engine shape (DNA array, gated array, or generalized protein array).
// Compiled engines are kept in per-shape pools across searches, so the
// netlist compilation that dominates a one-shot Search is paid only on
// first contact with each (query length, entry length) shape.
//
// Engines are not concurrency-safe, but a Database is: each in-flight
// race checks a simulator out of its shape pool for exclusive use, so
// Search may be called from any number of goroutines.  The one-shot
// Search function is a thin build-then-search wrapper over Database.
//
// A Database is also mutable and durable.  Insert and Remove change the
// collection while searches are in flight: every mutation publishes a
// new immutable snapshot (pipeline shards and seed index updated
// incrementally, copy-on-write) and bumps the Version counter, so a
// concurrent Search sees either all of a mutation or none of it.
// Entries carry stable uint64 IDs that survive compaction and
// save/reload; SaveSnapshot and OpenSnapshot persist the whole database
// — entries, options, seed index, counters — to a checksummed binary
// file.
type Database struct {
	cfg *config
	p   *pipeline.DB

	// state points to the current immutable view: the pipeline snapshot,
	// the seed index built over exactly that snapshot's slots, and the
	// slot→ID table.  Readers load it once per search; writers replace
	// it whole under mu.
	state atomic.Pointer[dbstate]

	mu     sync.Mutex     // serializes Insert/Remove/Compact/SaveSnapshot
	byID   map[uint64]int // ID → slot, maintained by writers only
	nextID uint64
	closed bool

	// compaction is the automatic tombstone-reclamation policy checked
	// after every Remove (and, when durable, on the policy's Interval).
	compaction CompactionPolicy // guarded by mu

	// Durability.  All nil/zero on a memory-only database; set once by
	// Persist or Open under mu, then read by the journaled mutation path
	// (under mu) and the snapshotter goroutine.
	wal          *store.WAL
	dir          string
	snapInterval time.Duration
	snapEvery    int
	snapSignal   chan struct{} // nudges the snapshotter (count trigger)
	stopSnap     chan struct{}
	loopDone     chan struct{}
	saveMu       sync.Mutex // serializes durable snapshot file writes

	searches     atomic.Int64
	compactions  atomic.Int64
	snapSaves    atomic.Int64
	snapFailures atomic.Int64
	snapVersion  atomic.Int64 // version the newest on-disk snapshot covers
	lastSnap     atomic.Int64 // unix nanos of the newest durable snapshot
}

// dbstate is one immutable version of everything a search reads.  The
// three fields advance together: the index covers exactly the
// snapshot's slot space, and ids[slot] names every slot (tombstoned
// ones keep their stale ID until compaction).
type dbstate struct {
	snap *pipeline.Snapshot
	idx  *index.Index
	ids  []uint64
}

// NewDatabase validates and shards entries once, for many searches.  It
// accepts every engine-shaping option (WithLibrary, WithMatrix,
// WithClockGating, WithOneHotEncoding), WithSeedIndex for the k-mer
// pre-filter, and WithThreshold / WithTopK / WithWorkers as per-search
// defaults that individual Search calls may override.  The entries are
// assigned stable IDs 0..len(entries)-1 in order.
func NewDatabase(entries []string, opts ...Option) (*Database, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if name := cfg.firstApplied("WithFullScan"); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a per-search option; pass it to Database.Search instead", name)
	}
	if name := cfg.firstApplied("WithSync", "WithSnapshotInterval", "WithSnapshotEvery"); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a durability option; pass it to Persist or Open instead", name)
	}
	ids := make([]uint64, len(entries))
	for i := range ids {
		ids[i] = uint64(i)
	}
	return assembleDatabase(cfg, entries, ids, uint64(len(entries)), 0, nil)
}

// assembleDatabase wires a Database from resolved parts — the shared
// tail of NewDatabase and OpenSnapshot.  A nil idx is built from the
// entries when cfg asks for a seed index.
func assembleDatabase(cfg *config, entries []string, ids []uint64, nextID uint64,
	version int64, idx *index.Index) (*Database, error) {

	factory, err := searchFactory(cfg)
	if err != nil {
		return nil, err
	}
	// Validate the entry alphabet once at load: a long-running database
	// must reject a bad entry here, not fail intermittently at query
	// time whenever a candidate set happens to include it.
	alphabet := cfg.alphabet()
	for i, entry := range entries {
		if j := invalidSymbol(entry, alphabet); j >= 0 {
			return nil, fmt.Errorf("racelogic: database entry %d contains symbol %q outside the engine alphabet (%s)",
				i, entry[j], alphabet)
		}
	}
	p, err := pipeline.NewDB(entries, factory, cfg.library)
	if err != nil {
		return nil, err
	}
	if version != 0 {
		p.SetVersion(version)
	}
	if idx == nil && cfg.seedK > 0 {
		if idx, err = index.New(entries, cfg.seedK); err != nil {
			return nil, err
		}
	}
	d := &Database{
		cfg:        cfg,
		p:          p,
		byID:       make(map[uint64]int, len(ids)),
		nextID:     nextID,
		compaction: cfg.compaction,
	}
	for slot, id := range ids {
		d.byID[id] = slot
	}
	d.state.Store(&dbstate{snap: p.Snapshot(), idx: idx, ids: ids})
	return d, nil
}

// alphabet returns the symbol set the configured engine accepts.
func (c *config) alphabet() string {
	if c.matrix != "" {
		return score.ProteinAlphabet
	}
	return score.DNAAlphabet
}

// invalidSymbol returns the position of the first byte of s outside
// alphabet, or -1 when every symbol is valid.
func invalidSymbol(s, alphabet string) int {
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(alphabet, s[i]) < 0 {
			return i
		}
	}
	return -1
}

// Insert adds entries to the live database and returns their newly
// assigned stable IDs, in order.  The length shards and the k-mer seed
// index are extended incrementally — no rebuild, no pause: searches in
// flight keep their pre-insert snapshot, searches started after Insert
// returns see every new entry.  Entries are validated against the
// engine alphabet first; on any invalid entry nothing is inserted.
// Inserting zero entries is a no-op that does not bump the version.
//
// On a durable database (Persist/Open) the insert is journaled to the
// write-ahead log before it is applied, so by the time Insert returns
// it survives a crash.
func (d *Database) Insert(entries ...string) ([]uint64, error) {
	alphabet := d.cfg.alphabet()
	for i, entry := range entries {
		if len(entry) == 0 {
			return nil, fmt.Errorf("racelogic: inserted entry %d is empty", i)
		}
		if j := invalidSymbol(entry, alphabet); j >= 0 {
			return nil, fmt.Errorf("racelogic: inserted entry %d contains symbol %q outside the engine alphabet (%s)",
				i, entry[j], alphabet)
		}
	}
	if len(entries) == 0 {
		return []uint64{}, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	newIDs := make([]uint64, len(entries))
	for j := range entries {
		newIDs[j] = d.nextID + uint64(j)
	}
	// Append before apply: a journaling failure must leave the database
	// untouched, and an applied mutation must already be on disk.
	if d.wal != nil {
		if err := d.wal.AppendInsert(d.state.Load().snap.Version()+1, newIDs, entries); err != nil {
			return nil, fmt.Errorf("%w: insert: %w", ErrJournal, err)
		}
	}
	if err := d.insertLocked(entries, newIDs); err != nil {
		return nil, err
	}
	d.signalSnapshotter()
	return newIDs, nil
}

// insertLocked applies a validated insert with pre-assigned IDs — the
// shared tail of Insert and WAL replay.  Caller holds d.mu.
func (d *Database) insertLocked(entries []string, newIDs []uint64) error {
	cur := d.state.Load()
	start, snap, err := d.p.Insert(entries)
	if err != nil {
		return err
	}
	idx := cur.idx
	if idx != nil {
		idx = idx.Grow(entries)
	}
	ids := cur.ids
	for j, id := range newIDs {
		d.byID[id] = start + j
		if id >= d.nextID {
			d.nextID = id + 1
		}
		ids = append(ids, id)
	}
	d.state.Store(&dbstate{snap: snap, idx: idx, ids: ids})
	return nil
}

// Remove deletes the entries with the given stable IDs.  It is
// all-or-nothing: an unknown or repeated ID returns an error (wrapping
// ErrUnknownID for unknown ones) with nothing removed.  Removal
// tombstones the entries' slots — the seed index keeps its postings and
// searches filter them — until the CompactionPolicy triggers, at which
// point the database compacts: slots are renumbered densely and the
// seed index rebuilt, with IDs unchanged throughout.  In-flight
// searches keep their pre-remove snapshot either way.
//
// On a durable database the remove (and any policy-triggered
// compaction) is journaled to the write-ahead log before it is applied.
func (d *Database) Remove(ids ...uint64) error {
	if len(ids) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if _, ok := d.byID[id]; !ok {
			return fmt.Errorf("racelogic: remove %d: %w", id, ErrUnknownID)
		}
		if seen[id] {
			return fmt.Errorf("racelogic: remove: id %d repeated in one call", id)
		}
		seen[id] = true
	}
	if d.wal != nil {
		if err := d.wal.AppendRemove(d.state.Load().snap.Version()+1, ids); err != nil {
			return fmt.Errorf("%w: remove: %w", ErrJournal, err)
		}
	}
	if err := d.removeLocked(ids); err != nil {
		return err
	}
	// Compact when the policy says the tombstones are worth reclaiming:
	// the wasted slots cost collector memory per search and stale
	// postings per seed lookup, and a dense rebuild is O(live) — cheap
	// exactly when the live set has shrunk.
	cur := d.state.Load()
	if d.compaction.due(cur.snap.Dead(), cur.snap.Len()) {
		next, _, err := d.compactDurable(cur)
		if err != nil {
			return err
		}
		d.state.Store(next)
	}
	d.signalSnapshotter()
	return nil
}

// removeLocked applies a pre-validated remove — the shared tail of
// Remove and WAL replay.  Caller holds d.mu; every ID must be live.
func (d *Database) removeLocked(ids []uint64) error {
	slots := make([]int, len(ids))
	for i, id := range ids {
		slot, ok := d.byID[id]
		if !ok {
			return fmt.Errorf("racelogic: remove %d: %w", id, ErrUnknownID)
		}
		slots[i] = slot
	}
	cur := d.state.Load()
	snap, err := d.p.Remove(slots)
	if err != nil {
		return err
	}
	for _, id := range ids {
		delete(d.byID, id)
	}
	d.state.Store(&dbstate{snap: snap, idx: cur.idx, ids: cur.ids})
	return nil
}

// CompactStats reports one compaction.  Entry IDs are the stable handle
// across compactions; Remap exists only for clients that cached
// slot-based state (a SearchResult.Index, a pipeline candidate list)
// and need to rebind it.
type CompactStats struct {
	// Version is the database mutation counter after the compaction (or
	// the unchanged current version when nothing was reclaimed).
	Version int64
	// Live is the number of live entries; Reclaimed the tombstoned
	// slots dropped by this compaction (0 = nothing to do).
	Live, Reclaimed int
	// Remap maps every pre-compaction slot to its post-compaction slot,
	// -1 for the dropped tombstones.  Nil when nothing was reclaimed.
	Remap []int
}

// Compact forces a dense rebuild now, regardless of the automatic
// CompactionPolicy, and reports what moved.  With no tombstones it is a
// no-op that does not bump the version.  On a durable database the
// compaction is journaled.  Searches in flight keep their pre-compact
// snapshot; entry IDs are unaffected — they are the stable handle.
func (d *Database) Compact() (*CompactStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	cur := d.state.Load()
	next, remap, err := d.compactDurable(cur)
	if err != nil {
		return nil, err
	}
	st := &CompactStats{Version: next.snap.Version(), Live: next.snap.Len()}
	if next != cur {
		d.state.Store(next)
		st.Reclaimed = cur.snap.Dead()
		st.Remap = remap
		d.signalSnapshotter()
	}
	return st, nil
}

// compactDurable journals (when a WAL is attached) and applies a dense
// rebuild of cur, returning the replacement state and the old→new slot
// remap.  With no tombstones it returns cur unchanged and a nil remap.
// Caller holds d.mu and stores the result.
func (d *Database) compactDurable(cur *dbstate) (*dbstate, []int, error) {
	if cur.snap.Dead() == 0 {
		return cur, nil, nil
	}
	if d.wal != nil {
		if err := d.wal.AppendCompact(cur.snap.Version() + 1); err != nil {
			return nil, nil, fmt.Errorf("%w: compaction: %w", ErrJournal, err)
		}
	}
	return d.compactLocked(cur)
}

// compactLocked rebuilds cur densely (dropping tombstones) and returns
// the replacement state plus the slot remap.  Caller holds d.mu and
// stores the result.
func (d *Database) compactLocked(cur *dbstate) (*dbstate, []int, error) {
	remap, snap := d.p.Compact()
	if remap == nil {
		return cur, nil, nil
	}
	ids := make([]uint64, snap.Slots())
	for old, slot := range remap {
		if slot >= 0 {
			ids[slot] = cur.ids[old]
			d.byID[cur.ids[old]] = slot
		}
	}
	idx := cur.idx
	if idx != nil {
		var err error
		if idx, err = index.New(snap.Entries(), idx.K()); err != nil {
			return nil, nil, err
		}
	}
	d.compactions.Add(1)
	return &dbstate{snap: snap, idx: idx, ids: ids}, remap, nil
}

// Len returns the number of live database entries.
func (d *Database) Len() int { return d.state.Load().snap.Len() }

// Buckets returns the number of distinct live entry lengths.
func (d *Database) Buckets() int { return d.state.Load().snap.Buckets() }

// Version returns the mutation counter: 0 for a fresh database,
// incremented by every Insert, Remove, and compaction, and preserved
// across SaveSnapshot/OpenSnapshot.
func (d *Database) Version() int64 { return d.state.Load().snap.Version() }

// Tombstones returns the number of removed entries whose slots have not
// been compacted away yet.
func (d *Database) Tombstones() int { return d.state.Load().snap.Dead() }

// IDs returns the stable IDs of every live entry, in slot order.
func (d *Database) IDs() []uint64 {
	st := d.state.Load()
	out := make([]uint64, 0, st.snap.Len())
	for slot := 0; slot < st.snap.Slots(); slot++ {
		if st.snap.Live(slot) {
			out = append(out, st.ids[slot])
		}
	}
	return out
}

// SeedK returns the k-mer seed length, or 0 when the database was built
// without WithSeedIndex.
func (d *Database) SeedK() int {
	if d.state.Load().idx == nil {
		return 0
	}
	return d.state.Load().idx.K()
}

// EnginesBuilt returns the number of arrays compiled over the database's
// lifetime, across all searches and shapes — the quantity engine pooling
// amortizes.
func (d *Database) EnginesBuilt() int64 { return d.p.EnginesBuilt() }

// PooledEngines returns the number of idle compiled arrays currently
// parked in the shape pools, ready for the next search.
func (d *Database) PooledEngines() int { return d.p.PooledEngines() }

// Searches returns the number of Search calls served.
func (d *Database) Searches() int64 { return d.searches.Load() }

// Search scores query against the database and returns the ranked
// report.  It is safe for concurrent callers, including concurrently
// with Insert and Remove: the whole search runs against the snapshot
// current when it started, and the report's Version records which one.
// Per-search options — WithThreshold, WithTopK, WithWorkers,
// WithFullScan — override the database defaults; options that shape the
// compiled engines or the seed index (WithLibrary, WithMatrix,
// WithClockGating, WithOneHotEncoding, WithSeedIndex) are fixed at
// construction and rejected here.
func (d *Database) Search(query string, opts ...Option) (*SearchReport, error) {
	cfg := *d.cfg
	cfg.applied = nil
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if name := cfg.firstApplied(databaseFixedOptions...); name != "" {
		return nil, fmt.Errorf("racelogic: %s is fixed when the database is built; pass it to NewDatabase instead", name)
	}
	return d.search(query, &cfg)
}

// search runs one query under a fully resolved config, against the
// state loaded once here.
func (d *Database) search(query string, cfg *config) (*SearchReport, error) {
	st := d.state.Load()
	var cands []int
	skipped := 0
	// A query shorter than k carries no seeds, so the index cannot
	// filter: skip the lookup entirely rather than materialize an
	// identity candidate slice.
	if st.idx != nil && !cfg.fullScan && len(query) >= st.idx.K() {
		cands = st.idx.Candidates(query)
		// Postings may still name tombstoned slots (removal leaves the
		// index untouched until compaction); drop them here.
		n := 0
		for _, slot := range cands {
			if st.snap.Live(slot) {
				cands[n] = slot
				n++
			}
		}
		cands = cands[:n]
		if len(cands) == st.snap.Len() {
			// Full coverage: fall back to the nil "scan everything"
			// convention so the pipeline reuses the buckets sharded at
			// publish time.
			cands = nil
		} else {
			skipped = st.snap.Len() - len(cands)
		}
	}
	rep, err := d.p.SearchAt(st.snap, query, pipeline.Request{
		Threshold:  cfg.threshold,
		Workers:    cfg.workers,
		TopK:       cfg.topK,
		Candidates: cands,
	})
	if err != nil {
		return nil, err
	}
	d.searches.Add(1)
	out := &SearchReport{
		Query:        query,
		Version:      st.snap.Version(),
		Results:      make([]SearchResult, len(rep.Results)),
		Scanned:      rep.Scanned,
		Skipped:      skipped,
		Matched:      rep.Matched,
		Rejected:     rep.Rejected,
		Buckets:      rep.Buckets,
		EnginesBuilt: rep.EnginesBuilt,
		TotalCycles:  rep.TotalCycles,
		TotalEnergyJ: rep.TotalEnergyJ,
	}
	for i, r := range rep.Results {
		out.Results[i] = SearchResult{
			Index:    r.Index,
			ID:       st.ids[r.Index],
			Sequence: r.Sequence,
			Score:    r.Score,
			Metrics: Metrics{
				Cycles:           r.Cycles,
				LatencyNS:        r.LatencyNS,
				EnergyJ:          r.EnergyJ,
				AreaUM2:          r.AreaUM2,
				PowerDensityWCM2: r.PowerDensityWCM2,
			},
		}
	}
	return out, nil
}
