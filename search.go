package racelogic

import (
	"context"
	"fmt"

	"racelogic/internal/pipeline"
	"racelogic/internal/race"
)

// SearchResult is one database entry that survived the race, with the
// hardware metrics of its individual alignment.
type SearchResult struct {
	// Index is the entry's current slot in the database: its position in
	// the global stable-ID order over every resident slot (live and
	// tombstoned), which is shard-count-invariant — a database
	// partitioned with WithShards reports the same Index an
	// unpartitioned one would.  Slots are renumbered when a mutated
	// database compacts its tombstones, so long-lived references should
	// use ID.  Sequence is the entry itself.
	Index    int
	Sequence string
	// ID is the entry's stable identifier: assigned at load or Insert,
	// unchanged by compaction and by snapshot save/reload, and the
	// handle Database.Remove takes.  For a one-shot Search, IDs coincide
	// with the database slice positions.
	ID uint64
	// Score is the alignment score (arrival time of the output edge).
	// Lower means more similar, for DNA and prepared protein matrices
	// alike.
	Score int64
	// Metrics prices this entry's race on its bucket's shared array.
	Metrics Metrics
}

// SearchReport is the outcome of scoring one query against a database.
type SearchReport struct {
	// Query is the searched-for sequence.
	Query string
	// Version is the database mutation counter the search ran against:
	// the whole report reflects exactly that snapshot, no matter which
	// Inserts or Removes landed while the races were in flight.  Always
	// 0 for the one-shot Search.
	Version int64
	// Results holds the matches ranked by (Score, Index) ascending,
	// truncated to WithTopK.  The order is deterministic regardless of
	// worker count and shard count alike — a partitioned database's
	// scatter-gather merge ranks by the same global coordinates.
	Results []SearchResult
	// Scanned, Matched and Rejected count the database entries raced,
	// the entries that finished below the threshold (including matches
	// beyond the top-K truncation), and the entries the Section 6
	// pre-filter abandoned after threshold+1 cycles.
	Scanned, Matched, Rejected int
	// Skipped counts the entries the k-mer seed index excluded without
	// racing at all — they share no length-k substring with the query.
	// Zero unless WithSeedIndex is in effect.  Scanned+Skipped equals
	// the database size.
	Skipped int
	// Buckets is the number of distinct entry lengths; EnginesBuilt is
	// the number of arrays constructed to cover them — the quantity
	// engine reuse keeps far below Scanned.
	Buckets, EnginesBuilt int
	// TotalCycles and TotalEnergyJ aggregate every race, accepted or
	// rejected; a threshold shrinks both.
	TotalCycles  int
	TotalEnergyJ float64
}

// Search scores query against every entry of db on a pool of reusable
// Race Logic arrays and returns the ranked matches — the paper's database
// search workload ("for every new sequence obtained, a search for similar
// sequences is performed across known databases", Section 1).
//
// Entries are sharded into one bucket per length, because arrays are
// fixed-size hardware: each bucket's array is built once and reset between
// races rather than rebuilt per pair, and buckets fan out across a worker
// pool.  Search accepts the same options as the engines:
//
//   - WithThreshold enables the Section 6 pre-filter — dissimilar entries
//     cost only threshold+1 cycles before being dropped;
//   - WithClockGating builds Section 4.3 gated arrays (combinable with
//     WithThreshold);
//   - WithMatrix selects a protein matrix and switches every bucket to
//     the Section 5 generalized array (WithOneHotEncoding applies);
//   - WithLibrary prices the races;
//   - WithTopK and WithWorkers shape the report and the fan-out.
//
// Search accepts WithSeedIndex too, building the k-mer pre-filter for
// its single query.  An empty database returns an empty report.  An
// empty query or database entry is an error: the arrays need at least a
// 1×1 edit graph.
//
// Search is a thin build-then-search wrapper over Database: it pays full
// sharding, indexing and compilation cost per call.  Callers with more
// than one query against the same collection should hold a Database and
// amortize that cost across searches.
func Search(query string, db []string, opts ...Option) (*SearchReport, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("racelogic: empty query")
	}
	d, err := NewDatabase(db, opts...)
	if err != nil {
		return nil, err
	}
	return d.search(context.Background(), query, d.cfg)
}

// BatchError reports which query of a batch failed.  Query is the
// index into the queries slice passed to SearchBatch; Err is the
// underlying failure, reachable through errors.Is/As.
type BatchError struct {
	Query int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("query %d: %v", e.Query, e.Err) }

func (e *BatchError) Unwrap() error { return e.Err }

// SearchBatch scores every query against db in one pipeline pass and
// returns one report per query, in input order.  It is the batch
// counterpart of the one-shot Search: the database is built once and
// shared by the whole batch, and under BackendLanes same-shape
// candidate pairs from different queries share lane packs.  Each
// report matches what Search would return for its query alone, except
// EnginesBuilt, which counts the batch's shared engine pool.
func SearchBatch(queries []string, db []string, opts ...Option) ([]*SearchReport, error) {
	d, err := NewDatabase(db, opts...)
	if err != nil {
		return nil, err
	}
	return d.searchBatch(context.Background(), queries, d.cfg)
}

// searchFactory maps the engine options onto a per-bucket array builder.
func searchFactory(cfg *config) (pipeline.Factory, error) {
	if cfg.matrix != "" {
		if cfg.gateRegion > 0 {
			return nil, fmt.Errorf("racelogic: clock gating applies to the DNA array only; it cannot be combined with WithMatrix(%q)", cfg.matrix)
		}
		prepared, enc, err := preparedMatrix(cfg.matrix, cfg.oneHot)
		if err != nil {
			return nil, err
		}
		return func(n, m int) (pipeline.Engine, error) {
			a, err := race.NewGeneralArray(n, m, prepared, enc)
			if err != nil {
				return nil, err
			}
			a.SetBackend(cfg.backend)
			return a, nil
		}, nil
	}
	if cfg.gateRegion > 0 {
		return func(n, m int) (pipeline.Engine, error) {
			a, err := race.NewGatedArray(n, m, cfg.gateRegion)
			if err != nil {
				return nil, err
			}
			a.SetBackend(cfg.backend)
			return a, nil
		}, nil
	}
	return func(n, m int) (pipeline.Engine, error) {
		a, err := race.NewArray(n, m)
		if err != nil {
			return nil, err
		}
		a.SetBackend(cfg.backend)
		if cfg.laneWidth > 0 {
			if err := a.SetLaneWidth(cfg.laneWidth); err != nil {
				return nil, err
			}
		}
		return a, nil
	}, nil
}
