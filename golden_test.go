package racelogic_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"racelogic"
	"racelogic/internal/seqgen"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenCompare marshals got, then either rewrites the golden file
// (-update) or requires a byte-identical match with it.  Every golden
// test runs its workload under every backend against the same file, so
// the corpus pins cycle-accurate behavior AND proves the fast backends
// reproduce it — a regression in any engine shows up as a diff.
func goldenCompare(t *testing.T, name string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create golden files)", err)
	}
	if !bytes.Equal(want, data) {
		t.Fatalf("%s does not match golden file; diff the file against this output or rerun with -update if the change is intended:\n%s", path, data)
	}
}

// goldenEntries is the fixed corpus every golden search runs against.
func goldenEntries() []string {
	gen := seqgen.NewDNA(400)
	entries := make([]string, 0, 12)
	for _, n := range []int{4, 6, 6, 8, 8, 8, 10, 10, 12, 5, 7, 9} {
		entries = append(entries, gen.Random(n))
	}
	return entries
}

// TestGoldenSearchReports pins the full SearchReport — ranking, scores,
// stable IDs, scan counters, cycle totals, energy — for a deterministic
// database under each engine configuration, and checks both backends
// against the same files.
func TestGoldenSearchReports(t *testing.T) {
	entries := goldenEntries()
	queries := []string{"ACGTACGT", "TTTTTT", "GATTACA"}
	variants := []struct {
		name string
		opts []racelogic.Option
	}{
		{"plain", nil},
		{"gated", []racelogic.Option{racelogic.WithClockGating(2)}},
		{"threshold_topk", []racelogic.Option{racelogic.WithThreshold(7), racelogic.WithTopK(3)}},
		{"seeded", []racelogic.Option{racelogic.WithSeedIndex(3)}},
	}
	for _, v := range variants {
		for _, backend := range []racelogic.Backend{racelogic.BackendCycle, racelogic.BackendEvent, racelogic.BackendLanes} {
			if *update && backend != racelogic.BackendCycle {
				continue // golden files are written from the reference backend
			}
			opts := append([]racelogic.Option{
				racelogic.WithBackend(backend),
				racelogic.WithWorkers(1),
			}, v.opts...)
			d, err := racelogic.NewDatabase(entries, opts...)
			if err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			reports := make([]*racelogic.SearchReport, 0, len(queries))
			for _, q := range queries {
				rep, err := d.Search(q)
				if err != nil {
					t.Fatalf("%s (%v) %q: %v", v.name, backend, q, err)
				}
				rep.EnginesBuilt = 0 // pool-timing dependent, excluded from the pin
				reports = append(reports, rep)
			}
			goldenCompare(t, "search_"+v.name, reports)
		}
	}
}

// TestGoldenAlignments pins single-pair alignments — score, traceback
// rows, the full timing matrix, and metrics — for the DNA and protein
// engines under both backends.
func TestGoldenAlignments(t *testing.T) {
	type alignmentCase struct {
		Name      string
		P, Q      string
		Alignment *racelogic.Alignment
	}

	dna := []struct{ p, q string }{
		{"GATTACA", "GCATGCA"},
		{"ACGT", "ACGT"},
		{"AAAA", "TTTTTT"},
	}
	prot := []struct{ p, q string }{
		{"ARND", "ARNE"},
		{"WYV", "WYV"},
	}

	for _, backend := range []racelogic.Backend{racelogic.BackendCycle, racelogic.BackendEvent, racelogic.BackendLanes} {
		if *update && backend != racelogic.BackendCycle {
			continue
		}
		var cases []alignmentCase
		for _, c := range dna {
			e, err := racelogic.NewDNAEngine(len(c.p), len(c.q), racelogic.WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			a, err := e.Align(c.p, c.q)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, alignmentCase{"dna", c.p, c.q, a})
		}
		for _, c := range prot {
			e, err := racelogic.NewProteinEngine(len(c.p), len(c.q), "BLOSUM62", racelogic.WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			a, err := e.Align(c.p, c.q)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, alignmentCase{"protein", c.p, c.q, a})
		}
		goldenCompare(t, "alignments", cases)
	}
}
