package racelogic

import (
	"fmt"

	"racelogic/internal/race"
	"racelogic/internal/score"
	"racelogic/internal/tech"
	"racelogic/internal/temporal"
)

// DNAEngine is the paper's synthesized design: the Fig. 4 synchronous
// Race Logic array for DNA global sequence alignment under the Fig. 2b
// score matrix with mismatches promoted to ∞ (match = 1, indel = 1).
// The score of an alignment is the number of matches plus indels on the
// optimal path; identical strings of length N score N, completely
// mismatched ones 2N.
//
// An engine compiles its array once and reuses the same simulator across
// Align calls, so it is not safe for concurrent use: build one engine
// per goroutine (Search does this internally).
type DNAEngine struct {
	cfg   *config
	plain *race.Array
	gated *race.GatedArray
	area  float64
	n, m  int
}

// NewDNAEngine builds an engine for strings of exactly lengths n and m
// (hardware arrays are fixed-size; build one per problem shape).  It
// rejects search-only options such as WithTopK and WithWorkers: a
// single-pair engine has nothing for them to apply to.
func NewDNAEngine(n, m int, opts ...Option) (*DNAEngine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if name := cfg.firstApplied(searchOnlyOptions...); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a search option; it has no effect on a single-pair DNA engine (use Search or Database.Search)", name)
	}
	e := &DNAEngine{cfg: cfg, n: n, m: m}
	if cfg.gateRegion > 0 {
		e.gated, err = race.NewGatedArray(n, m, cfg.gateRegion)
		if err != nil {
			return nil, err
		}
		e.gated.SetBackend(cfg.backend)
		e.area = cfg.library.AreaUM2(e.gated.Netlist())
	} else {
		e.plain, err = race.NewArray(n, m)
		if err != nil {
			return nil, err
		}
		e.plain.SetBackend(cfg.backend)
		e.area = cfg.library.AreaUM2(e.plain.Netlist())
	}
	return e, nil
}

// Dims returns the string lengths the engine was built for.
func (e *DNAEngine) Dims() (n, m int) { return e.n, e.m }

// AreaUM2 returns the engine's placed cell area under its library.
func (e *DNAEngine) AreaUM2() float64 { return e.area }

// Align races p against q and returns the alignment score with hardware
// metrics.  With WithThreshold set, dissimilar pairs return Found=false
// after only threshold+1 cycles.
func (e *DNAEngine) Align(p, q string) (*Alignment, error) {
	var res *race.AlignResult
	var err error
	switch {
	case e.gated != nil && e.cfg.threshold >= 0:
		// Gating never changes arrival times (a region's clock is cut
		// only once every flip-flop inside already holds "1"), so the
		// Section 6 early exit composes with Section 4.3 gating freely.
		res, err = e.gated.AlignThreshold(p, q, temporal.Time(e.cfg.threshold))
	case e.gated != nil:
		res, err = e.gated.Align(p, q)
	case e.cfg.threshold >= 0:
		res, err = e.plain.AlignThreshold(p, q, temporal.Time(e.cfg.threshold))
	default:
		res, err = e.plain.Align(p, q)
	}
	if err != nil {
		return nil, err
	}
	return toAlignment(e.cfg.library, e.area, res, p, q, score.DNAShortestInf())
}

// ProteinEngine is the Section 5 generalized Race Logic array: it
// executes an arbitrary score matrix (by default a race-prepared
// BLOSUM62) using binary saturating counters, per-symbol-pair weight
// selection and set-on-arrival latches in every cell.  Lower scores mean
// higher similarity (the matrix is transformed for the OR-type race).
//
// Like DNAEngine, a ProteinEngine reuses one compiled simulator across
// Align calls and is not safe for concurrent use.
type ProteinEngine struct {
	cfg    *config
	arr    *race.GeneralArray
	matrix *score.Matrix
	area   float64
	n, m   int
}

// preparedMatrix resolves a named protein matrix ("" and "BLOSUM62"
// select BLOSUM62, "PAM250" PAM250), prepares it for the OR-type race,
// and picks the delay encoding — shared by NewProteinEngine and Search.
func preparedMatrix(name string, oneHot bool) (*score.Matrix, race.Encoding, error) {
	var base *score.Matrix
	switch name {
	case "", "BLOSUM62":
		base = score.BLOSUM62()
	case "PAM250":
		base = score.PAM250()
	default:
		return nil, 0, fmt.Errorf("racelogic: unknown matrix %q (have BLOSUM62, PAM250)", name)
	}
	prepared, err := base.PrepareForRace()
	if err != nil {
		return nil, 0, err
	}
	enc := race.BinaryCounter
	if oneHot {
		enc = race.OneHot
	}
	return prepared, enc, nil
}

// NewProteinEngine builds a generalized engine for strings of lengths n
// and m under the named matrix: "BLOSUM62" (default) or "PAM250".  It
// rejects search-only options, and WithClockGating too: Section 4.3
// gating applies to the DNA array only.
func NewProteinEngine(n, m int, matrixName string, opts ...Option) (*ProteinEngine, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if name := cfg.firstApplied(searchOnlyOptions...); name != "" {
		return nil, fmt.Errorf("racelogic: %s is a search option; it has no effect on a single-pair protein engine (use Search or Database.Search)", name)
	}
	if cfg.gateRegion > 0 {
		return nil, fmt.Errorf("racelogic: clock gating applies to the DNA array only; it cannot be combined with the generalized protein array")
	}
	prepared, enc, err := preparedMatrix(matrixName, cfg.oneHot)
	if err != nil {
		return nil, err
	}
	arr, err := race.NewGeneralArray(n, m, prepared, enc)
	if err != nil {
		return nil, err
	}
	arr.SetBackend(cfg.backend)
	return &ProteinEngine{
		cfg:    cfg,
		arr:    arr,
		matrix: prepared,
		area:   cfg.library.AreaUM2(arr.Netlist()),
		n:      n,
		m:      m,
	}, nil
}

// Dims returns the string lengths the engine was built for.
func (e *ProteinEngine) Dims() (n, m int) { return e.n, e.m }

// AreaUM2 returns the engine's placed cell area under its library.
func (e *ProteinEngine) AreaUM2() float64 { return e.area }

// MatrixName returns the name of the prepared score matrix in use.
func (e *ProteinEngine) MatrixName() string { return e.matrix.Name }

// Align races p against q.  Lower scores mean higher similarity.
func (e *ProteinEngine) Align(p, q string) (*Alignment, error) {
	var res *race.AlignResult
	var err error
	if e.cfg.threshold >= 0 {
		res, err = e.arr.AlignThreshold(p, q, temporal.Time(e.cfg.threshold))
	} else {
		res, err = e.arr.Align(p, q)
	}
	if err != nil {
		return nil, err
	}
	return toAlignment(e.cfg.library, e.area, res, p, q, e.matrix)
}

// Graph is a weighted directed acyclic graph accepted by ShortestPath and
// LongestPath — the general Section 3 construction.
type Graph struct {
	g *dagGraph
}

// dagGraph aliases the internal graph so the public type stays opaque.
type dagGraph = graphImpl

// NewGraph returns an empty DAG builder.
func NewGraph() *Graph { return &Graph{g: newGraphImpl()} }

// AddNode adds a node and returns its ID.
func (gr *Graph) AddNode(name string) int { return gr.g.addNode(name) }

// AddEdge adds a directed edge with a non-negative integer weight.  Use
// Never for an infinite weight (equivalent to omitting the edge).
func (gr *Graph) AddEdge(from, to int, weight int64) error {
	return gr.g.addEdge(from, to, weight)
}

// ShortestPath compiles the graph to an OR-type race circuit, injects a
// rising edge at every source node, and returns the arrival time at dst —
// the shortest-path weight — or Never if dst is unreachable.
func (gr *Graph) ShortestPath(dst int) (int64, error) { return gr.g.solve(dst, race.ORType) }

// LongestPath races an AND-type circuit: the arrival time at dst is the
// longest-path weight, or Never if any of dst's ancestors can never fire.
func (gr *Graph) LongestPath(dst int) (int64, error) { return gr.g.solve(dst, race.ANDType) }

// Libraries returns the available standard-cell library names.
func Libraries() []string {
	names := make([]string, 0, 2)
	for _, l := range tech.Libraries() {
		names = append(names, l.Name)
	}
	return names
}
