package racelogic_test

// Shard-scaling benchmarks: BenchmarkSearchShards shows scatter-gather
// search holding its throughput across partition counts (the shared
// worker pool and engine pools keep the work identical), and
// BenchmarkInsertShards shows concurrent insert throughput scaling with
// shards — the per-shard locks and O(shard) postings copies are the
// whole point of the partitioning.  CI runs both as 1x smoke; run
// locally with -bench 'Shards' -benchtime for real numbers.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"racelogic"
	"racelogic/internal/seqgen"
)

// benchShardCounts sweeps the partition axis; 8-vs-1 is the headline
// concurrent-insert ratio.
var benchShardCounts = []int{1, 2, 4, 8}

// BenchmarkSearchShards races one warm seeded query per iteration at
// each shard count.
func BenchmarkSearchShards(b *testing.B) {
	g := seqgen.NewDNA(211)
	entries := g.Database(1500, 12)
	query := g.Random(12)
	for _, n := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db, err := racelogic.NewDatabase(entries, racelogic.WithSeedIndex(6), racelogic.WithShards(n))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Search(query); err != nil { // warm the pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Search(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsertShards hammers concurrent single-entry inserts into a
// database with a sizable seed index — the workload where the
// unpartitioned postings-map copy serializes writers.  Compare
// shards=8 against shards=1 on a multicore runner; the acceptance
// floor for this PR is >1.5x.
func BenchmarkInsertShards(b *testing.B) {
	g := seqgen.NewDNA(223)
	seed := g.Database(4000, 12)
	// A pre-generated entry pool keeps the RNG out of the hot loop.
	pool := make([]string, 1<<12)
	for i := range pool {
		pool[i] = g.Random(12)
	}
	for _, n := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			db, err := racelogic.NewDatabase(seed, racelogic.WithSeedIndex(6), racelogic.WithShards(n))
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					e := pool[next.Add(1)%uint64(len(pool))]
					if _, err := db.Insert(e); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
