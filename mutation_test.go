package racelogic_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"racelogic"
	"racelogic/internal/seqgen"
)

// TestDatabaseInsertRemove drives the public mutation API end to end:
// stable IDs, version counting, all-or-nothing failures, and searches
// reflecting every landed mutation.
func TestDatabaseInsertRemove(t *testing.T) {
	g := seqgen.NewDNA(71)
	entries := g.Database(6, 8)
	db, err := racelogic.NewDatabase(entries, racelogic.WithSeedIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 0 || db.Len() != 6 {
		t.Fatalf("fresh database: version=%d len=%d", db.Version(), db.Len())
	}
	if got, want := db.IDs(), []uint64{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("initial IDs = %v, want %v", got, want)
	}

	query := g.Random(8)
	planted, err := g.Mutate(query, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.Insert(planted, g.Random(10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []uint64{6, 7}) {
		t.Fatalf("inserted IDs = %v, want [6 7]", ids)
	}
	if db.Version() != 1 || db.Len() != 8 || db.Buckets() != 2 {
		t.Fatalf("after insert: version=%d len=%d buckets=%d", db.Version(), db.Len(), db.Buckets())
	}
	rep, err := db.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 {
		t.Errorf("report version = %d, want 1", rep.Version)
	}
	found := false
	for _, r := range rep.Results {
		if r.ID == 6 {
			found = true
			if r.Sequence != planted {
				t.Errorf("ID 6 carries sequence %q, want %q", r.Sequence, planted)
			}
		}
	}
	if !found {
		t.Error("inserted near-match did not surface in the next search")
	}

	// Remove is all-or-nothing: the unknown ID fails the whole batch.
	if err := db.Remove(0, 99); !errors.Is(err, racelogic.ErrUnknownID) {
		t.Errorf("remove with unknown ID: err = %v, want ErrUnknownID", err)
	}
	if err := db.Remove(0, 0); err == nil {
		t.Error("repeated ID in one Remove must error")
	}
	if db.Len() != 8 || db.Version() != 1 {
		t.Errorf("failed removes must not mutate: len=%d version=%d", db.Len(), db.Version())
	}
	if err := db.Remove(6); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 7 || db.Version() != 2 || db.Tombstones() != 1 {
		t.Fatalf("after remove: len=%d version=%d tombstones=%d", db.Len(), db.Version(), db.Tombstones())
	}
	rep, err = db.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.ID == 6 {
			t.Error("removed entry still surfaces in searches")
		}
	}
	if rep.Scanned+rep.Skipped != db.Len() {
		t.Errorf("scanned %d + skipped %d != %d live entries", rep.Scanned, rep.Skipped, db.Len())
	}
	// Removing an already-removed ID is unknown, not a double delete.
	if err := db.Remove(6); !errors.Is(err, racelogic.ErrUnknownID) {
		t.Errorf("re-removing: err = %v, want ErrUnknownID", err)
	}

	// Insert validates the alphabet atomically: one bad entry, nothing
	// lands, and the version stays put.
	if _, err := db.Insert("ACGT", "ACGN"); err == nil {
		t.Error("insert with a non-DNA symbol must error")
	}
	if _, err := db.Insert("ACGT", ""); err == nil {
		t.Error("insert with an empty entry must error")
	}
	if db.Len() != 7 || db.Version() != 2 {
		t.Errorf("failed inserts must not mutate: len=%d version=%d", db.Len(), db.Version())
	}
	if ids, err := db.Insert(); err != nil || len(ids) != 0 || db.Version() != 2 {
		t.Errorf("empty insert must be a version-preserving no-op: ids=%v err=%v version=%d", ids, err, db.Version())
	}
}

// TestDatabaseCompaction removes until tombstones outnumber live
// entries and checks the dense rebuild: IDs survive renumbering, the
// incrementally maintained seed index is rebuilt consistently, and
// searches agree with a fresh database over the same live set.
func TestDatabaseCompaction(t *testing.T) {
	g := seqgen.NewDNA(73)
	entries := g.Database(10, 9)
	db, err := racelogic.NewDatabase(entries, racelogic.WithSeedIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	// Remove 6 of 10: dead (6) > live (4) triggers compaction.
	if err := db.Remove(0, 2, 4, 6, 8, 9); err != nil {
		t.Fatal(err)
	}
	if db.Tombstones() != 0 {
		t.Fatalf("tombstones = %d after passing the compaction threshold, want 0", db.Tombstones())
	}
	if got, want := db.IDs(), []uint64{1, 3, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("IDs after compaction = %v, want %v", got, want)
	}
	live := []string{entries[1], entries[3], entries[5], entries[7]}
	fresh, err := racelogic.NewDatabase(live, racelogic.WithSeedIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	query := g.Random(9)
	got, err := db.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	// The compacted database matches a fresh one entry for entry; only
	// IDs, the version counter, and engine counts legitimately differ.
	if got.Scanned != want.Scanned || got.Skipped != want.Skipped || len(got.Results) != len(want.Results) {
		t.Fatalf("compacted search %+v differs from fresh %+v", got, want)
	}
	for i, r := range got.Results {
		w := want.Results[i]
		if r.Index != w.Index || r.Sequence != w.Sequence || r.Score != w.Score {
			t.Errorf("rank %d: compacted (%d,%q,%d) vs fresh (%d,%q,%d)",
				i, r.Index, r.Sequence, r.Score, w.Index, w.Sequence, w.Score)
		}
	}
	// Slots renumbered densely, so new inserts extend cleanly.
	ids, err := db.Insert(g.Random(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []uint64{10}) {
		t.Errorf("post-compaction insert IDs = %v, want [10]", ids)
	}
	if db.Len() != 5 {
		t.Errorf("len = %d, want 5", db.Len())
	}
}

// TestDatabaseConcurrentMutation is the snapshot-isolation stress test,
// run under -race in CI.  A mutator repeatedly inserts a pair of
// near-matches in one call and removes them in another, while searchers
// hammer the same query.  Every report must be atomic: both pair
// members present or neither, and the scanned+skipped total equal to
// the live size of one of the two legal states.  Tombstones accumulate
// across rounds, so the compaction path runs under fire too.
func TestDatabaseConcurrentMutation(t *testing.T) {
	g := seqgen.NewDNA(79)
	base := g.Database(10, 10) // length 10: cannot collide with the length-12 pair
	db, err := racelogic.NewDatabase(base, racelogic.WithSeedIndex(4))
	if err != nil {
		t.Fatal(err)
	}
	query := g.Random(12)
	p, err := g.Mutate(query, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.Mutate(query, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const rounds, searchers = 40, 6
	var stop atomic.Bool
	errs := make(chan error, searchers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < rounds; i++ {
			ids, err := db.Insert(p, q)
			if err != nil {
				errs <- err
				return
			}
			if err := db.Remove(ids...); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rep, err := db.Search(query)
				if err != nil {
					errs <- err
					return
				}
				var nP, nQ int
				for _, r := range rep.Results {
					switch r.Sequence {
					case p:
						nP++
					case q:
						nQ++
					}
				}
				if nP != nQ || nP > 1 {
					errs <- fmt.Errorf("version %d: saw %d copies of P and %d of Q — a half-applied mutation",
						rep.Version, nP, nQ)
					return
				}
				size := rep.Scanned + rep.Skipped
				if want := len(base) + 2*nP; size != want {
					errs <- fmt.Errorf("version %d: scanned+skipped = %d, want %d with pair present=%v",
						rep.Version, size, want, nP == 1)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if db.Len() != len(base) {
		t.Errorf("final live size = %d, want %d", db.Len(), len(base))
	}
	if got := db.Version(); got < int64(2*rounds) {
		t.Errorf("version = %d after %d mutations", got, 2*rounds)
	}
}

// TestSnapshotRoundTrip is the durability acceptance property: after
// mutations, SaveSnapshot → OpenSnapshot reproduces the database so
// exactly that search reports are byte-identical modulo EnginesBuilt,
// and the ID/version counters continue where they left off.
func TestSnapshotRoundTrip(t *testing.T) {
	g := seqgen.NewDNA(83)
	var entries []string
	for _, n := range []int{8, 10, 12} {
		entries = append(entries, g.Database(8, n)...)
	}
	db, err := racelogic.NewDatabase(entries,
		racelogic.WithSeedIndex(4), racelogic.WithThreshold(16), racelogic.WithTopK(10), racelogic.WithLibrary("OSU"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(g.Random(12), g.Random(9)); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(2, 7, 11); err != nil {
		t.Fatal(err)
	}
	if db.Tombstones() == 0 {
		t.Fatal("test needs tombstones at save time to exercise save-side compaction")
	}

	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if db.Tombstones() != 0 {
		t.Error("SaveSnapshot must compact so the file matches memory")
	}
	back, err := racelogic.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || back.Version() != db.Version() || back.SeedK() != db.SeedK() ||
		back.Buckets() != db.Buckets() {
		t.Fatalf("reopened shape differs: len %d/%d version %d/%d seedk %d/%d buckets %d/%d",
			back.Len(), db.Len(), back.Version(), db.Version(), back.SeedK(), db.SeedK(), back.Buckets(), db.Buckets())
	}
	if !reflect.DeepEqual(back.IDs(), db.IDs()) {
		t.Fatalf("reopened IDs %v differ from saved %v", back.IDs(), db.IDs())
	}
	queries := []string{g.Random(12), g.Random(10), g.Random(6), g.Random(3)}
	for _, q := range queries {
		want, err := db.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripEngines(want), stripEngines(got)) {
			t.Errorf("query %q: reopened report differs:\n got %+v\nwant %+v", q, got, want)
		}
		// The default options fingerprint survived: a thresholded,
		// truncated, seeded search behaves identically without re-passing
		// any option.
		full, err := back.Search(q, racelogic.WithFullScan(), racelogic.WithThreshold(-1))
		if err != nil {
			t.Fatal(err)
		}
		if full.Scanned != back.Len() {
			t.Errorf("query %q: full scan raced %d of %d", q, full.Scanned, back.Len())
		}
	}

	// Counters resume: the next insert must not reuse a persisted ID.
	oldIDs := back.IDs()
	ids, err := back.Insert(g.Random(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range oldIDs {
		if ids[0] == old {
			t.Fatalf("reused stable ID %d after reload", old)
		}
	}
	if back.Version() != db.Version()+1 {
		t.Errorf("version after reload+insert = %d, want %d", back.Version(), db.Version()+1)
	}
}

// TestOpenSnapshotErrors pins the failure modes: missing and corrupted
// files must error, never half-load.
func TestOpenSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := racelogic.OpenSnapshot(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("missing snapshot must error")
	}
	db, err := racelogic.NewDatabase([]string{"ACGT", "TTTT"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "db.snap")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := racelogic.OpenSnapshot(bad); err == nil {
		t.Error("corrupted snapshot must error")
	}
}
