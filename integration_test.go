package racelogic

// Integration tests crossing the module's layers through the public API:
// the race engines, the reference DP, the systolic baseline and the
// asynchronous extension must all tell one consistent story on shared
// workloads.

import (
	"math"
	"math/rand"
	"testing"

	"racelogic/internal/align"
	"racelogic/internal/async"
	"racelogic/internal/score"
	"racelogic/internal/seqgen"
	"racelogic/internal/systolic"
)

// TestIntegrationFourModelsAgree runs random DNA pairs through (1) the
// public DNAEngine (gate-level synchronous race), (2) the reference
// software DP, (3) the asynchronous analog race, and (4) checks the
// score identity linking the race score to the Levenshtein-flavored
// systolic result via the match count.
func TestIntegrationFourModelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := seqgen.NewDNA(82)
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		p := g.Random(n)
		q := g.Random(n)

		engine, err := NewDNAEngine(n, n)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := engine.Align(p, q)
		if err != nil {
			t.Fatal(err)
		}

		ref, err := align.Global(p, q, score.DNAShortestInf())
		if err != nil {
			t.Fatal(err)
		}
		if hw.Score != int64(ref.Score) {
			t.Fatalf("%q vs %q: engine %d != DP %v", p, q, hw.Score, ref.Score)
		}

		eg, _, sink, err := align.EditGraph(p, q, score.DNAShortestInf())
		if err != nil {
			t.Fatal(err)
		}
		ac, ids, err := async.FromDAG(eg, async.MinNode)
		if err != nil {
			t.Fatal(err)
		}
		if got := ac.Race().Arrival[ids[sink]]; math.Abs(got-float64(hw.Score)) > 1e-9 {
			t.Fatalf("%q vs %q: async %v != engine %d", p, q, got, hw.Score)
		}

		// Score identity: under match=1/indel=1/mismatch=∞ the race
		// score is N+M − LCS(p,q), and the traced alignment's match
		// count is exactly that LCS.
		lcsViaScore := int64(2*n) - hw.Score
		matches := 0
		for k := range hw.AlignedP {
			if hw.AlignedP[k] != '_' && hw.AlignedP[k] == hw.AlignedQ[k] {
				matches++
			}
		}
		if int64(matches) != lcsViaScore {
			t.Fatalf("%q vs %q: traced matches %d != N+M−score %d", p, q, matches, lcsViaScore)
		}
	}
}

// TestIntegrationSystolicAndEditDistance checks the baseline agrees with
// the public EditDistance on the same workloads the race engines use.
func TestIntegrationSystolicAndEditDistance(t *testing.T) {
	arr, err := systolic.New(12, DNAAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	g := seqgen.NewDNA(83)
	for trial := 0; trial < 20; trial++ {
		p, q := g.RandomPair(12)
		r, err := arr.Compare(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.Distance != EditDistance(p, q) {
			t.Fatalf("%q vs %q: systolic %d != EditDistance %d", p, q, r.Distance, EditDistance(p, q))
		}
	}
}

// TestIntegrationProteinRankingStable checks that the generalized engine
// ranks a mutation ladder monotonically: each extra substitution can only
// slow the race down (scores are non-decreasing in edit burden).
func TestIntegrationProteinRankingStable(t *testing.T) {
	const n = 5
	e, err := NewProteinEngine(n, n, "BLOSUM62")
	if err != nil {
		t.Fatal(err)
	}
	g := seqgen.NewProtein(84)
	query := g.Random(n)
	prev := int64(-1)
	for subs := 0; subs <= n; subs += 2 {
		mut, err := g.Mutate(query, subs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Align(query, mut)
		if err != nil {
			t.Fatal(err)
		}
		if a.Score < prev {
			// Not strictly guaranteed for arbitrary matrices, but with
			// BLOSUM62's dominant diagonal a smaller edit burden must
			// not lose to a larger one on the same positions.
			t.Fatalf("score decreased with more substitutions: %d after %d subs (prev %d)",
				a.Score, subs, prev)
		}
		prev = a.Score
	}
}

// TestIntegrationGatingEndToEnd races the same worst-case pair through
// ungated, coarsely gated and finely gated engines and checks the scores
// agree while the measured energies order as Section 4.3 predicts at the
// extremes of the U-curve.
func TestIntegrationGatingEndToEnd(t *testing.T) {
	const n = 12
	g := seqgen.NewDNA(85)
	p, q := g.WorstCase(n)
	var scores []int64
	var energies []float64
	for _, region := range []int{0, 4, 1} { // ungated, near-optimal, finest
		opts := []Option{}
		if region > 0 {
			opts = append(opts, WithClockGating(region))
		}
		e, err := NewDNAEngine(n, n, opts...)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Align(p, q)
		if err != nil {
			t.Fatal(err)
		}
		scores = append(scores, a.Score)
		energies = append(energies, a.Metrics.EnergyJ)
	}
	if scores[0] != scores[1] || scores[1] != scores[2] {
		t.Fatalf("gating changed scores: %v", scores)
	}
	if energies[1] >= energies[0] {
		t.Errorf("near-optimal gating %g must beat ungated %g", energies[1], energies[0])
	}
}
