package racelogic

import (
	"fmt"

	"racelogic/internal/store"
	"racelogic/internal/tech"
)

// SaveSnapshot persists the database to path as a versioned,
// checksummed binary snapshot: every live entry with its stable ID, the
// options fingerprint that shaped the engines, the serialized seed
// index, and the mutation/ID counters.  The file is written to a
// temporary sibling and renamed into place, so a crash mid-save leaves
// any previous snapshot intact.
//
// Tombstones are compacted first (bumping Version if there were any),
// so the saved slot numbering is exactly the in-memory one: a database
// reopened with OpenSnapshot returns byte-identical search reports,
// modulo EnginesBuilt.  Concurrent searches are never blocked; Insert
// and Remove wait for the serialization to finish.
//
// SaveSnapshot is the portable export path; it does not interact with a
// durable database's own snapshot/WAL directory — use Checkpoint for
// that.
func (d *Database) SaveSnapshot(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	next, _, err := d.compactDurable(st)
	if err != nil {
		return err
	}
	if next != st {
		d.state.Store(next)
		st = next
	}
	return store.WriteFile(path, d.snapshotPayload(st))
}

// snapshotPayload assembles the serializable form of one compacted
// state.  Caller holds d.mu (nextID) and guarantees st is dense; the
// returned struct shares st's immutable slices, so it stays valid for
// writing after the lock is released.
func (d *Database) snapshotPayload(st *dbstate) *store.Snapshot {
	return &store.Snapshot{
		Options: store.Options{
			Library:    d.cfg.library.Name,
			Matrix:     d.cfg.matrix,
			GateRegion: d.cfg.gateRegion,
			OneHot:     d.cfg.oneHot,
			SeedK:      d.cfg.seedK,
			Threshold:  d.cfg.threshold,
			TopK:       d.cfg.topK,
			Workers:    d.cfg.workers,
		},
		Version: st.snap.Version(),
		NextID:  d.nextID,
		IDs:     st.ids,
		Entries: st.snap.Entries(),
		Index:   st.idx,
	}
}

// configFromStoreOptions rebuilds the construction configuration from a
// snapshot's options fingerprint.
func configFromStoreOptions(o store.Options) (*config, error) {
	lib, err := tech.ByName(o.Library)
	if err != nil {
		return nil, err
	}
	return &config{
		library:      lib,
		matrix:       o.Matrix,
		gateRegion:   o.GateRegion,
		oneHot:       o.OneHot,
		seedK:        o.SeedK,
		threshold:    o.Threshold,
		topK:         o.TopK,
		workers:      o.Workers,
		compaction:   DefaultCompactionPolicy,
		snapInterval: DefaultSnapshotInterval,
		snapEvery:    DefaultSnapshotEvery,
	}, nil
}

// openStored turns a deserialized snapshot into a Database under cfg.
func openStored(cfg *config, s *store.Snapshot, path string) (*Database, error) {
	if s.Index != nil && s.Index.K() != cfg.seedK {
		return nil, fmt.Errorf("%s: snapshot index has k=%d but the fingerprint says %d", path, s.Index.K(), cfg.seedK)
	}
	d, err := assembleDatabase(cfg, s.Entries, s.IDs, s.NextID, s.Version, s.Index)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// OpenSnapshot loads a database saved by SaveSnapshot.  The engine
// options, per-search defaults, entries, stable IDs, mutation version,
// and seed index all come from the file — no options are passed here,
// so a snapshot always reopens exactly as it was saved.  The checksum
// and structural invariants are verified before anything is built.
//
// The result is memory-only: mutations are not journaled.  For a
// crash-safe database use Open on a directory instead.
func OpenSnapshot(path string) (*Database, error) {
	s, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := configFromStoreOptions(s.Options)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return openStored(cfg, s, path)
}
