package racelogic

import (
	"fmt"

	"racelogic/internal/store"
	"racelogic/internal/tech"
)

// SaveSnapshot persists the database to path as a versioned,
// checksummed binary snapshot: every live entry with its stable ID, the
// options fingerprint that shaped the engines, the serialized seed
// index, and the mutation/ID counters.  The file is written to a
// temporary sibling and renamed into place, so a crash mid-save leaves
// any previous snapshot intact.
//
// Tombstones are compacted first (bumping Version if there were any),
// so the saved slot numbering is exactly the in-memory one: a database
// reopened with OpenSnapshot returns byte-identical search reports,
// modulo EnginesBuilt.  Concurrent searches are never blocked; Insert
// and Remove wait for the serialization to finish.
func (d *Database) SaveSnapshot(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if st.snap.Dead() > 0 {
		next, err := d.compactLocked(st)
		if err != nil {
			return err
		}
		d.state.Store(next)
		st = next
	}
	return store.WriteFile(path, &store.Snapshot{
		Options: store.Options{
			Library:    d.cfg.library.Name,
			Matrix:     d.cfg.matrix,
			GateRegion: d.cfg.gateRegion,
			OneHot:     d.cfg.oneHot,
			SeedK:      d.cfg.seedK,
			Threshold:  d.cfg.threshold,
			TopK:       d.cfg.topK,
			Workers:    d.cfg.workers,
		},
		Version: st.snap.Version(),
		NextID:  d.nextID,
		IDs:     st.ids,
		Entries: st.snap.Entries(),
		Index:   st.idx,
	})
}

// OpenSnapshot loads a database saved by SaveSnapshot.  The engine
// options, per-search defaults, entries, stable IDs, mutation version,
// and seed index all come from the file — no options are passed here,
// so a snapshot always reopens exactly as it was saved.  The checksum
// and structural invariants are verified before anything is built.
func OpenSnapshot(path string) (*Database, error) {
	s, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lib, err := tech.ByName(s.Options.Library)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	cfg := &config{
		library:    lib,
		matrix:     s.Options.Matrix,
		gateRegion: s.Options.GateRegion,
		oneHot:     s.Options.OneHot,
		seedK:      s.Options.SeedK,
		threshold:  s.Options.Threshold,
		topK:       s.Options.TopK,
		workers:    s.Options.Workers,
	}
	if s.Index != nil && s.Index.K() != cfg.seedK {
		return nil, fmt.Errorf("%s: snapshot index has k=%d but the fingerprint says %d", path, s.Index.K(), cfg.seedK)
	}
	d, err := assembleDatabase(cfg, s.Entries, s.IDs, s.NextID, s.Version, s.Index)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
