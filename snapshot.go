package racelogic

import (
	"fmt"

	"racelogic/internal/index"
	"racelogic/internal/store"
	"racelogic/internal/tech"
)

// SaveSnapshot persists the database to path as a versioned,
// checksummed binary snapshot: every live entry with its stable ID in
// global ID order, the options fingerprint that shaped the engines, and
// the mutation/ID counters — one portable file regardless of how the
// database is partitioned in memory.  The file is written to a
// temporary sibling and renamed into place, so a crash mid-save leaves
// any previous snapshot intact.
//
// Tombstones are compacted first (bumping Version if there were any),
// so the saved numbering is exactly the in-memory one: a database
// reopened with OpenSnapshot returns byte-identical search reports,
// modulo EnginesBuilt, whatever shard count either side runs with.
// Concurrent searches are never blocked; Insert and Remove wait for the
// compaction (not the file write) to finish.
//
// SaveSnapshot is the portable export path; it does not interact with a
// durable database's own snapshot/WAL directory — use Checkpoint for
// that.
func (d *Database) SaveSnapshot(path string) error {
	_, v, err := d.compactAll(false, true)
	if err != nil {
		return err
	}
	entries, ids := flatten(v)
	// The per-shard seed indexes are partition-local, so the export
	// merges them into one global index over the flattened order (and
	// reopening partitions it back) — neither direction re-tokenizes a
	// single sequence.
	var ix *index.Index
	if d.cfg.seedK > 0 {
		globalIdx := make(map[uint64]int, len(ids))
		for i, id := range ids {
			globalIdx[id] = i
		}
		parts := make([]*index.Index, len(v.states))
		for s, st := range v.states {
			parts[s] = st.idx
		}
		if ix, err = index.Merge(parts, len(entries), func(sh, local int) int {
			return globalIdx[v.states[sh].ids[local]]
		}); err != nil {
			return err
		}
	}
	return store.WriteFile(path, &store.Snapshot{
		Options:       d.storeOptions(),
		Shard:         0,
		ShardCount:    1,
		Version:       v.version,
		GlobalVersion: v.version,
		NextID:        d.nextID.Load(),
		IDs:           ids,
		Entries:       entries,
		Index:         ix,
	})
}

// storeOptions is the construction fingerprint serialized with every
// snapshot (shard files and portable exports alike).  The shard count
// is deliberately not part of it: partitioning never changes a report,
// so a snapshot may reopen under any count.
func (d *Database) storeOptions() store.Options {
	return store.Options{
		Library:    d.cfg.library.Name,
		Matrix:     d.cfg.matrix,
		GateRegion: d.cfg.gateRegion,
		OneHot:     d.cfg.oneHot,
		SeedK:      d.cfg.seedK,
		Threshold:  d.cfg.threshold,
		TopK:       d.cfg.topK,
		Workers:    d.cfg.workers,
	}
}

// configFromStoreOptions rebuilds the construction configuration from a
// snapshot's options fingerprint.
func configFromStoreOptions(o store.Options) (*config, error) {
	lib, err := tech.ByName(o.Library)
	if err != nil {
		return nil, err
	}
	return &config{
		library:      lib,
		matrix:       o.Matrix,
		gateRegion:   o.GateRegion,
		oneHot:       o.OneHot,
		seedK:        o.SeedK,
		threshold:    o.Threshold,
		topK:         o.TopK,
		workers:      o.Workers,
		compaction:   DefaultCompactionPolicy,
		snapInterval: DefaultSnapshotInterval,
		snapEvery:    DefaultSnapshotEvery,
		segBytes:     DefaultWALSegmentBytes,
	}, nil
}

// OpenSnapshot loads a database saved by SaveSnapshot.  The engine
// options, per-search defaults, entries, stable IDs, mutation version,
// and seed index all come from the file, so a snapshot always reopens
// exactly as it was saved (the stored global index is partitioned
// across the shards instead of re-built from the sequences, and the
// partition count defaults to GOMAXPROCS — partitioning never changes a
// report).  The checksum and structural invariants are verified before
// anything is built.
//
// The accepted options are WithBackend and WithLaneWidth: the
// simulation engine and its lane-pack width are runtime choices,
// deliberately outside the snapshot fingerprint, and every combination
// reproduces the saved database's reports byte for byte.
//
// The result is memory-only: mutations are not journaled.  For a
// crash-safe database use Open on a directory instead.
func OpenSnapshot(path string, opts ...Option) (*Database, error) {
	s, err := store.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if s.ShardCount != 1 {
		return nil, fmt.Errorf("racelogic: %s is shard %d of a %d-shard layout, not a portable snapshot; use Open on its directory",
			path, s.Shard, s.ShardCount)
	}
	cfg, err := configFromStoreOptions(s.Options)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, o := range opts {
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	for _, name := range cfg.applied {
		if name != "WithBackend" && name != "WithLaneWidth" {
			return nil, fmt.Errorf("racelogic: %s cannot be set here; a snapshot fixes every option except WithBackend and WithLaneWidth", name)
		}
	}
	if s.Index != nil && s.Index.K() != cfg.seedK {
		return nil, fmt.Errorf("%s: snapshot index has k=%d but the fingerprint says %d", path, s.Index.K(), cfg.seedK)
	}
	d, err := assembleDatabase(cfg, s.Entries, s.IDs, s.NextID, s.GlobalVersion, s.Index)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
